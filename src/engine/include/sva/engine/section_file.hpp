// Generic checksummed section container shared by the engine's persisted
// artifacts (per-stage checkpoints, the serving model bundle).
//
// Layout: an 8-byte magic, a varbyte format version, two caller-defined
// header words (the checkpoint stores its stage id and configuration
// fingerprint; the bundle stores a flags word and the fingerprint), a
// section table (name, size, FNV-1a checksum per section), an FNV-1a
// checksum of the header itself, then the section payloads.  parse()
// refuses anything that does not verify — truncation or a bit flip
// anywhere, including in the header or section table, raises FormatError
// instead of decoding garbage.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sva::engine {

class SectionedFile {
 public:
  /// First caller-defined header word (checkpoint: stage id).
  std::uint64_t tag = 0;
  /// Second caller-defined header word (engine-config fingerprint).
  std::uint64_t fingerprint = 0;

  void add(std::string name, std::vector<std::uint8_t> payload);
  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] const std::vector<std::uint8_t>& section(std::string_view name) const;

  /// Serial: writes temp-then-rename under `path` (a kill can never leave
  /// a half-written artifact under its final name).  The temp file is
  /// PID- and sequence-suffixed (concurrent writers to the same final
  /// path — threads or processes — cannot clobber each other), fsynced
  /// before the rename, and unlinked on a failed write; the parent
  /// directory is fsynced after the rename so the published entry
  /// survives a crash.
  void write(const std::filesystem::path& path, const char (&magic)[8],
             std::uint64_t version) const;

  /// Parses an in-memory image; throws FormatError on any corruption.
  /// `what` prefixes error messages ("checkpoint", "bundle", ...).
  static SectionedFile parse(std::span<const std::uint8_t> bytes, const char (&magic)[8],
                             std::uint64_t version, const char* what);

  /// Serial: reads and fully validates `path`.
  static SectionedFile read(const std::filesystem::path& path, const char (&magic)[8],
                            std::uint64_t version, const char* what);

  /// Reads a whole file into memory; throws sva::Error when the file
  /// cannot be opened (shared by read() and SPMD broadcast loaders).
  static std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path,
                                                   const char* what);

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

}  // namespace sva::engine
