// Incremental delta ingestion (ROADMAP: streaming/incremental corpora).
//
// A version-2 bundle carries the frozen analysis model — major-term
// strings, association matrix, PCA basis — plus the full vocabulary and
// the serialized engine configuration.  That is exactly enough to extend
// the bundle with new documents *without the run that produced it*:
//
//   1. the new shards are scanned and inverted with the embedded
//      configuration (ingest_sharded — same bounded-memory path as a
//      full build);
//   2. signatures for the new documents are combined in the frozen
//      model's row order (string-keyed MajorRowMap), so each signature is
//      byte-identical to what a full run over the combined corpus would
//      compute under the same model;
//   3. every document — inherited rows straight from the base bundle,
//      new rows from step 2 — is assigned to the frozen centroids with
//      the same order-invariant evaluation pass k-means itself ends on;
//   4. vocabulary and corpus statistics are merged (sorted union /
//      additive counts) and a new bundle generation is written with the
//      counter advanced and the parent lineage linking it to its base.
//
// The acceptance invariant: ingest_delta(base, new) produces a bundle
// byte-identical to recompute_generation(base, combined) — the full
// recompute of the combined corpus under the same frozen model — for any
// processor count and either transport backend, provided the base bundle
// was exported with its per-document byte sizes as partition weights
// (Engine::run always does).  Queries over the two bundles are therefore
// digest-identical.
//
// Centroids are frozen, so cluster quality drifts as the corpus grows
// away from the base distribution.  Each delta measures that drift —
// per-document inertia rise and cluster-size skew vs the base — records
// it in the generation section, and flags "full re-cluster recommended"
// when a configurable threshold is exceeded.  The flag never blocks the
// ingest: the generation is still written and servable.
#pragma once

#include <cstdint>
#include <filesystem>

#include "sva/corpus/reader.hpp"
#include "sva/ga/runtime.hpp"

namespace sva::engine {

struct DeltaOptions {
  /// Shard plan for scanning the new documents (defaults to one shard).
  corpus::ShardingConfig sharding;
  /// Drift thresholds: exceeding either flags recluster_recommended.
  /// Recorded in the generation section, so the verdict is reproducible
  /// from the artifact alone.
  double max_inertia_rise = 0.25;
  double max_size_skew_rise = 0.5;
};

/// What a delta ingest measured and produced (replicated on all ranks).
struct DeltaReport {
  std::uint64_t generation = 0;  ///< the new bundle's generation counter
  std::uint64_t base_records = 0;
  std::uint64_t new_records = 0;
  double inertia_rise = 0.0;
  double size_skew = 0.0;
  double size_skew_rise = 0.0;
  bool recluster_recommended = false;
  std::uint64_t lineage = 0;  ///< the new bundle's lineage fingerprint
};

/// Collective: extends the bundle at `base_bundle` with the documents of
/// `new_docs` (positions 0..n-1 become global records base_records..) and
/// writes the next generation to `out_bundle`.  Only the new documents
/// are scanned; inherited products are reused from the base.  Throws
/// sva::Error when the base bundle lacks the frozen model, vocabulary or
/// embedded configuration (bundles exported by Engine::run carry all
/// three).
DeltaReport ingest_delta(ga::Context& ctx, const std::filesystem::path& base_bundle,
                         const corpus::CorpusReader& new_docs,
                         const std::filesystem::path& out_bundle,
                         const DeltaOptions& options = {});

/// Collective: the equivalence comparator — recomputes the next
/// generation from scratch over the *combined* corpus (base documents
/// first, new documents appended) under the base bundle's frozen model,
/// and writes it to `out_bundle`.  With identical `options`, the output
/// is byte-identical to ingest_delta over the tail alone; the
/// delta-equivalence gate (tests/delta_test.cpp, CI job) compares the two
/// files and their query digests.
DeltaReport recompute_generation(ga::Context& ctx, const std::filesystem::path& base_bundle,
                                 const corpus::CorpusReader& combined,
                                 const std::filesystem::path& out_bundle,
                                 const DeltaOptions& options = {});

}  // namespace sva::engine
