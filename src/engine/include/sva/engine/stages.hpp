// The engine's analysis stages (3–7) as composable steps over an
// IngestState.  run_text_engine composes them directly; the Engine
// facade interleaves them with checkpoint persistence so a killed run
// can resume at the last completed stage.  Stage functions are
// collective and deterministic: identical inputs produce byte-identical
// products for any processor count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sva/engine/ingest.hpp"
#include "sva/engine/pipeline.hpp"

namespace sva::engine {

/// Stages 3–5: the adaptive signature-generation loop (topicality →
/// association → signatures, growing N until the null fraction is
/// acceptable).
struct SignatureStageState {
  sig::TopicSelection selection;
  sig::AssociationMatrix association;  ///< final round's N×M matrix
  sig::SignatureSet signatures;
  int signature_rounds = 1;
  std::vector<double> null_fraction_per_round;
};

/// Collective: runs stages 3–5.  Marks "topic" / "AM" / "DocVec" per
/// round on `timer`.
SignatureStageState run_signature_stage(ga::Context& ctx, const IngestState& ingest,
                                        const EngineConfig& config, ga::StageTimer& timer);

/// Stage 6: clustering (k-means or hierarchical, per config).
struct ClusterStageState {
  cluster::KMeansResult clustering;
};

/// Collective: runs stage 6.  Marks "ClusProj" on `timer` (the paper
/// groups clustering and projection under one component label).
ClusterStageState run_cluster_stage(ga::Context& ctx, const SignatureStageState& sig_state,
                                    const EngineConfig& config, ga::StageTimer& timer);

/// Stage 7: PCA projection, gathered outputs and theme labels.
struct ProjectionStageState {
  cluster::ProjectionResult projection;
  cluster::PcaResult pca;  ///< padded to projection_components rows
  std::vector<std::int32_t> all_assignment;  ///< rank 0 only
  std::vector<std::vector<std::string>> theme_labels;
};

/// Collective: runs stage 7.  Marks "ClusProj" on `timer`.
ProjectionStageState run_projection_stage(ga::Context& ctx, const IngestState& ingest,
                                          const SignatureStageState& sig_state,
                                          const ClusterStageState& cluster_state,
                                          const EngineConfig& config, ga::StageTimer& timer);

/// Assembles the EngineResult from the per-stage products.  `timings`
/// come from the caller's timer (or a checkpoint restore).
EngineResult assemble_result(IngestState&& ingest, SignatureStageState&& sig_state,
                             ClusterStageState&& cluster_state,
                             ProjectionStageState&& projection_state,
                             const ComponentTimings& timings);

/// Folds a StageTimer's marked intervals into the paper's six component
/// buckets (repeated marks accumulate).
ComponentTimings fold_timings(const ga::StageTimer& timer);

}  // namespace sva::engine
