// Deterministic digest of an EngineResult.
//
// The engine guarantees byte-identical products for any processor count
// (§3's "identical products regardless of processor count").  This module
// turns that guarantee into something checkable from the outside: a
// canonical byte serialization of the deterministic products (snapshot)
// and a 64-bit FNV-1a checksum of it.  Telemetry — timings, wall clock,
// load-balance counters — is deliberately excluded: it depends on
// measured host CPU time and may differ run to run.
//
// The determinism tests compare snapshots across rank counts; the bench
// reports embed the checksum so CI can flag a P-variance regression from
// the emitted BENCH_*.json alone.
#pragma once

#include <cstdint>
#include <string>

#include "sva/engine/pipeline.hpp"

namespace sva::engine {

/// Serializes the deterministic products of a rank-0 EngineResult to a
/// byte string.  Doubles are captured as their exact bit patterns, so two
/// snapshots compare equal iff the results are byte-identical.
std::string result_snapshot(const EngineResult& result);

/// 64-bit FNV-1a over arbitrary bytes (exposed for tests).
std::uint64_t fnv1a64(const void* data, std::size_t size);

/// FNV-1a checksum of result_snapshot(result).
std::uint64_t result_checksum(const EngineResult& result);

/// Lowercase zero-padded hex rendering ("0x0123456789abcdef") used by the
/// JSON reports.
std::string checksum_hex(std::uint64_t checksum);

}  // namespace sva::engine
