// Engine checkpoints: per-stage persistence with versioned headers and
// per-section FNV-1a checksums, so a killed pipeline run restarts at the
// last completed stage (Engine::resume) instead of from the raw corpus.
//
// One file per completed stage group lives in the checkpoint directory:
//
//   ingest.svack      stages 1–2: vocabulary, field types, per-record
//                     term streams (global document order), per-record
//                     raw byte sizes (so any processor count reproduces
//                     the byte-balanced partition), term statistics and
//                     load-balance telemetry;
//   signatures.svack  stages 3–5: topic selection, knowledge signatures,
//                     adaptive-round telemetry;
//   cluster.svack     stage 6: centroids, assignment, sizes, inertia;
//   final.svack       stage 7: projection coordinates and theme labels.
//
// Every file records the engine-configuration fingerprint it was written
// under; loading with a different configuration is refused.  All
// integers are varbyte, doubles are exact bit patterns — a resumed run
// recomputes the remaining stages to a byte-identical EngineResult.
// Files are written to a temporary name and renamed, so a kill can never
// leave a half-written stage file under its final name; any corruption
// (truncation, bit flips — including in the header or section table) is
// rejected with FormatError.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sva/engine/ingest.hpp"
#include "sva/engine/section_file.hpp"
#include "sva/engine/stages.hpp"

namespace sva::engine {

/// Checkpointable stage groups, in pipeline order.
enum class Stage {
  kIngest = 0,      ///< scan & map + inverted indexing (stages 1–2)
  kSignatures = 1,  ///< topicality + association + signatures (3–5)
  kCluster = 2,     ///< clustering (6)
  kFinal = 3,       ///< projection + theme labels (7)
};

[[nodiscard]] const char* stage_name(Stage stage);
[[nodiscard]] std::optional<Stage> parse_stage(std::string_view name);
[[nodiscard]] std::filesystem::path stage_path(const std::filesystem::path& dir, Stage stage);

/// Checkpoint container: a SectionedFile under the SVACKPT1 magic whose
/// header tag is the stage id.  write() checksums each section and the
/// header itself; read() refuses anything that does not verify, with
/// FormatError.
class CheckpointFile {
 public:
  Stage stage = Stage::kIngest;
  std::uint64_t config_fingerprint = 0;

  void add(std::string name, std::vector<std::uint8_t> payload) {
    sections_.add(std::move(name), std::move(payload));
  }
  [[nodiscard]] bool has(std::string_view name) const { return sections_.has(name); }
  [[nodiscard]] const std::vector<std::uint8_t>& section(std::string_view name) const {
    return sections_.section(name);
  }

  /// Serial: writes temp-then-rename under `path`.  Non-const only to
  /// stamp stage/fingerprint into the section container without copying
  /// the payloads.
  void write(const std::filesystem::path& path);
  /// Serial: reads and fully validates `path`; throws FormatError on any
  /// corruption, sva::Error when the file cannot be opened.
  static CheckpointFile read(const std::filesystem::path& path);
  /// Parses an in-memory image (what read() and the resume broadcast
  /// use); throws FormatError on any corruption.
  static CheckpointFile parse(std::span<const std::uint8_t> bytes);

 private:
  SectionedFile sections_;
};

/// Highest stage S such that every stage file up to and including S is
/// present and valid in `dir` (invalid/corrupt files end the chain).
/// Serial; callers in an SPMD world should evaluate on rank 0 and
/// broadcast.
[[nodiscard]] std::optional<Stage> last_completed_stage(const std::filesystem::path& dir);

// ---- per-stage persistence (collective; rank 0 touches the disk) -------

void save_ingest_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                            const IngestState& state, const ComponentTimings& timings,
                            std::uint64_t config_fingerprint);

void save_signature_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                               const SignatureStageState& state,
                               const ComponentTimings& timings,
                               std::uint64_t config_fingerprint);

void save_cluster_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                             const ClusterStageState& state, const ComponentTimings& timings,
                             std::uint64_t config_fingerprint);

void save_final_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                           const ProjectionStageState& state, const ComponentTimings& timings,
                           std::uint64_t config_fingerprint);

/// Restored stage-1–2 state.  With `for_recompute`, the records and term
/// statistics needed to re-run stages 3–5 are rebuilt (records
/// redistributed by the stored byte sizes); otherwise only the light
/// replicated products are loaded.
struct IngestCheckpoint {
  IngestState state;  ///< forward/inverted global arrays are not restored
  ComponentTimings timings;
  std::vector<std::size_t> record_sizes;  ///< global, for partitioning
};
IngestCheckpoint load_ingest_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                                        std::uint64_t config_fingerprint, bool for_recompute);

struct SignatureCheckpoint {
  SignatureStageState state;  ///< signatures redistributed to this rank
  ComponentTimings timings;
};
SignatureCheckpoint load_signature_checkpoint(ga::Context& ctx,
                                              const std::filesystem::path& dir,
                                              std::uint64_t config_fingerprint,
                                              const std::vector<std::size_t>& record_sizes);

struct ClusterCheckpoint {
  ClusterStageState state;  ///< assignment redistributed to this rank
  std::vector<std::int32_t> all_assignment;  ///< rank 0 only
  ComponentTimings timings;
};
ClusterCheckpoint load_cluster_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                                          std::uint64_t config_fingerprint,
                                          const std::vector<std::size_t>& record_sizes);

struct FinalCheckpoint {
  ProjectionStageState state;
  ComponentTimings timings;
};
FinalCheckpoint load_final_checkpoint(ga::Context& ctx, const std::filesystem::path& dir,
                                      std::uint64_t config_fingerprint,
                                      const std::vector<std::size_t>& record_sizes);

}  // namespace sva::engine
