#include "sva/engine/section_file.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#include "sva/engine/digest.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {

void SectionedFile::add(std::string name, std::vector<std::uint8_t> payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

bool SectionedFile::has(std::string_view name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return true;
  }
  return false;
}

const std::vector<std::uint8_t>& SectionedFile::section(std::string_view name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return p;
  }
  throw FormatError("sectioned file: missing section '" + std::string(name) + "'");
}

void SectionedFile::write(const std::filesystem::path& path, const char (&magic)[8],
                          std::uint64_t version) const {
  ByteWriter out;
  out.raw(magic, sizeof(magic));
  out.u64(version);
  out.u64(tag);
  out.u64(fingerprint);
  out.u64(sections_.size());
  for (const auto& [name, payload] : sections_) {
    out.str(name);
    out.u64(payload.size());
    out.u64(fnv1a64(payload.data(), payload.size()));
  }
  // The header itself is covered too, so a bit flip in the section table
  // (names, sizes, stored checksums) is caught directly.
  out.u64(fnv1a64(out.bytes.data(), out.bytes.size()));
  for (const auto& [name, payload] : sections_) {
    out.raw(payload.data(), payload.size());
  }

  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    require(file.good(), "sectioned file: cannot open " + tmp.string());
    file.write(reinterpret_cast<const char*>(out.bytes.data()),
               static_cast<std::streamsize>(out.bytes.size()));
    require(file.good(), "sectioned file: short write to " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

SectionedFile SectionedFile::parse(std::span<const std::uint8_t> bytes,
                                   const char (&magic)[8], std::uint64_t version,
                                   const char* what) {
  const std::string prefix(what);
  require_format(bytes.size() >= sizeof(magic) &&
                     std::memcmp(bytes.data(), magic, sizeof(magic)) == 0,
                 prefix + ": bad magic (not a " + prefix + " file)");
  ByteReader in(bytes);
  {
    char seen[sizeof(magic)];
    in.raw(seen, sizeof(seen));
  }
  SectionedFile file;
  require_format(in.u64() == version, prefix + ": unsupported format version");
  file.tag = in.u64();
  file.fingerprint = in.u64();
  const std::uint64_t section_count = in.u64();
  require_format(section_count <= 64, prefix + ": implausible section count");

  struct Entry {
    std::string name;
    std::uint64_t size = 0;
    std::uint64_t checksum = 0;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(section_count));
  for (auto& e : entries) {
    e.name = in.str();
    e.size = in.u64();
    e.checksum = in.u64();
  }
  const std::size_t header_end = in.position();
  const std::uint64_t stored_header_fnv = in.u64();
  require_format(stored_header_fnv == fnv1a64(bytes.data(), header_end),
                 prefix + ": header checksum mismatch");

  std::uint64_t payload_total = 0;
  for (const auto& e : entries) {
    require_format(e.size <= bytes.size(), prefix + ": implausible section size");
    payload_total += e.size;
  }
  require_format(payload_total == in.remaining(),
                 prefix + ": payload size disagrees with section table");

  for (auto& e : entries) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(e.size));
    in.raw(payload.data(), payload.size());
    require_format(fnv1a64(payload.data(), payload.size()) == e.checksum,
                   prefix + ": section '" + e.name + "' checksum mismatch");
    file.sections_.emplace_back(std::move(e.name), std::move(payload));
  }
  in.expect_done();
  return file;
}

SectionedFile SectionedFile::read(const std::filesystem::path& path, const char (&magic)[8],
                                  std::uint64_t version, const char* what) {
  return parse(read_file_bytes(path, what), magic, version, what);
}

std::vector<std::uint8_t> SectionedFile::read_file_bytes(const std::filesystem::path& path,
                                                         const char* what) {
  const std::string prefix(what);
  std::ifstream in(path, std::ios::binary);
  require(in.good(), prefix + ": cannot open " + path.string());
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  require(end >= 0, prefix + ": cannot stat " + path.string());
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  require(in.good(), prefix + ": cannot read " + path.string());
  return bytes;
}

}  // namespace sva::engine
