#include "sva/engine/section_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "sva/engine/digest.hpp"
#include "sva/fault/fault.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {

namespace {

/// Opens, fsyncs and closes a directory so a just-renamed entry inside it
/// survives a crash (rename alone orders nothing on most filesystems).
void fsync_directory(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

/// Writes `bytes` to `path` and fsyncs before returning; throws sva::Error
/// (with the file removed) on any failure, so a partial temp file never
/// outlives the attempt.
void write_file_synced(const std::filesystem::path& path,
                       std::span<const std::uint8_t> bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  require(fd >= 0, "sectioned file: cannot open " + path.string() + ": " +
                       std::strerror(errno));
  auto fail = [&](const char* op) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw Error("sectioned file: " + std::string(op) + " failed for " + path.string() +
                ": " + std::strerror(err));
  };
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write");
    }
    written += static_cast<std::size_t>(n);
  }
  // The data must be on disk before the rename publishes the name: a
  // crash between rename and writeback would otherwise persist an empty
  // or truncated artifact under the final path.
  if (::fsync(fd) != 0) fail("fsync");
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(path.c_str());
    throw Error("sectioned file: close failed for " + path.string() + ": " +
                std::strerror(err));
  }
}

}  // namespace

void SectionedFile::add(std::string name, std::vector<std::uint8_t> payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

bool SectionedFile::has(std::string_view name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return true;
  }
  return false;
}

const std::vector<std::uint8_t>& SectionedFile::section(std::string_view name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return p;
  }
  throw FormatError("sectioned file: missing section '" + std::string(name) + "'");
}

void SectionedFile::write(const std::filesystem::path& path, const char (&magic)[8],
                          std::uint64_t version) const {
  fault::point(fault::sites::kSectionFileWrite);
  ByteWriter out;
  out.raw(magic, sizeof(magic));
  out.u64(version);
  out.u64(tag);
  out.u64(fingerprint);
  out.u64(sections_.size());
  for (const auto& [name, payload] : sections_) {
    out.str(name);
    out.u64(payload.size());
    out.u64(fnv1a64(payload.data(), payload.size()));
  }
  // The header itself is covered too, so a bit flip in the section table
  // (names, sizes, stored checksums) is caught directly.
  out.u64(fnv1a64(out.bytes.data(), out.bytes.size()));
  for (const auto& [name, payload] : sections_) {
    out.raw(payload.data(), payload.size());
  }

  if (path.has_parent_path()) {
    std::error_code dir_ec;
    std::filesystem::create_directories(path.parent_path(), dir_ec);
    if (dir_ec) {
      throw Error("sectioned file: cannot create parent directory for " + path.string() +
                  ": " + dir_ec.message());
    }
  }
  // PID- and sequence-suffixed temp name: two exporters racing on the
  // same final path (threads or processes) each write their own temp
  // file, and whichever renames last wins with a complete artifact — a
  // shared ".tmp" would let them clobber each other's half-written
  // bytes, and a PID alone still collides across threads.
  static std::atomic<std::uint64_t> write_seq{0};
  const std::filesystem::path tmp = path.string() + ".tmp." +
                                    std::to_string(::getpid()) + "." +
                                    std::to_string(write_seq.fetch_add(1));
  write_file_synced(tmp, out.bytes);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    throw Error("sectioned file: cannot rename " + tmp.string() + " to " + path.string() +
                ": " + ec.message());
  }
  // And the directory entry itself must survive a crash.
  fsync_directory(path.has_parent_path() ? path.parent_path()
                                         : std::filesystem::path("."));
}

SectionedFile SectionedFile::parse(std::span<const std::uint8_t> bytes,
                                   const char (&magic)[8], std::uint64_t version,
                                   const char* what) {
  const std::string prefix(what);
  require_format(bytes.size() >= sizeof(magic) &&
                     std::memcmp(bytes.data(), magic, sizeof(magic)) == 0,
                 prefix + ": bad magic (not a " + prefix + " file)");
  ByteReader in(bytes);
  {
    char seen[sizeof(magic)];
    in.raw(seen, sizeof(seen));
  }
  SectionedFile file;
  require_format(in.u64() == version, prefix + ": unsupported format version");
  file.tag = in.u64();
  file.fingerprint = in.u64();
  const std::uint64_t section_count = in.u64();
  require_format(section_count <= 64, prefix + ": implausible section count");

  struct Entry {
    std::string name;
    std::uint64_t size = 0;
    std::uint64_t checksum = 0;
  };
  std::vector<Entry> entries(static_cast<std::size_t>(section_count));
  for (auto& e : entries) {
    e.name = in.str();
    e.size = in.u64();
    e.checksum = in.u64();
  }
  const std::size_t header_end = in.position();
  const std::uint64_t stored_header_fnv = in.u64();
  require_format(stored_header_fnv == fnv1a64(bytes.data(), header_end),
                 prefix + ": header checksum mismatch");

  std::uint64_t payload_total = 0;
  for (const auto& e : entries) {
    require_format(e.size <= bytes.size(), prefix + ": implausible section size");
    payload_total += e.size;
  }
  require_format(payload_total == in.remaining(),
                 prefix + ": payload size disagrees with section table");

  for (auto& e : entries) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(e.size));
    in.raw(payload.data(), payload.size());
    require_format(fnv1a64(payload.data(), payload.size()) == e.checksum,
                   prefix + ": section '" + e.name + "' checksum mismatch");
    file.sections_.emplace_back(std::move(e.name), std::move(payload));
  }
  in.expect_done();
  return file;
}

SectionedFile SectionedFile::read(const std::filesystem::path& path, const char (&magic)[8],
                                  std::uint64_t version, const char* what) {
  return parse(read_file_bytes(path, what), magic, version, what);
}

std::vector<std::uint8_t> SectionedFile::read_file_bytes(const std::filesystem::path& path,
                                                         const char* what) {
  const std::string prefix(what);
  std::ifstream in(path, std::ios::binary);
  require(in.good(), prefix + ": cannot open " + path.string());
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  require(end >= 0, prefix + ": cannot stat " + path.string());
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  require(in.good(), prefix + ": cannot read " + path.string());
  if (fault::point(fault::sites::kSectionFileRead) == fault::Hint::kShortRead) {
    // Torn read: hand back a truncated prefix so the checksummed parse
    // path gets exercised exactly as a half-written file would exercise it.
    bytes.resize(bytes.size() / 2);
  }
  return bytes;
}

}  // namespace sva::engine
