#include "sva/engine/digest.hpp"

#include <bit>

namespace sva::engine {

std::string result_snapshot(const EngineResult& r) {
  std::string out;
  auto put_u64 = [&](std::uint64_t v) { out.append(reinterpret_cast<const char*>(&v), 8); };
  auto put_f64 = [&](double v) { put_u64(std::bit_cast<std::uint64_t>(v)); };
  auto put_str = [&](const std::string& s) {
    put_u64(s.size());
    out.append(s);
  };

  put_u64(r.num_records);
  put_u64(r.num_terms);
  put_u64(r.total_term_occurrences);
  put_u64(r.dimension);
  put_u64(static_cast<std::uint64_t>(r.signature_rounds));

  if (r.vocabulary) {
    for (const auto& term : r.vocabulary->terms) put_str(term);
  }

  for (auto t : r.selection.major_terms) put_u64(static_cast<std::uint64_t>(t));
  for (auto s : r.selection.scores) put_f64(s);
  for (auto d : r.selection.major_df) put_u64(static_cast<std::uint64_t>(d));
  for (auto t : r.selection.topic_terms) put_u64(static_cast<std::uint64_t>(t));

  put_u64(r.clustering.centroids.rows());
  put_u64(r.clustering.centroids.cols());
  for (double v : r.clustering.centroids.flat()) put_f64(v);
  for (auto s : r.clustering.cluster_sizes) put_u64(static_cast<std::uint64_t>(s));
  put_f64(r.clustering.inertia);
  put_u64(static_cast<std::uint64_t>(r.clustering.iterations));

  for (const auto& labels : r.theme_labels) {
    put_u64(labels.size());
    for (const auto& l : labels) put_str(l);
  }

  // Rank-0 gathered outputs: every document's coordinates and cluster.
  for (auto id : r.projection.all_doc_ids) put_u64(id);
  for (double v : r.projection.all_xy) put_f64(v);
  for (auto a : r.all_assignment) put_u64(static_cast<std::uint64_t>(a));

  return out;
}

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t result_checksum(const EngineResult& result) {
  const std::string snap = result_snapshot(result);
  return fnv1a64(snap.data(), snap.size());
}

std::string checksum_hex(std::uint64_t checksum) {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kDigits[(checksum >> shift) & 0xF];
  }
  return out;
}

}  // namespace sva::engine
