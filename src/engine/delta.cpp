#include "sva/engine/delta.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "sva/cluster/kmeans.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/engine.hpp"
#include "sva/engine/ingest.hpp"
#include "sva/ga/stage_timer.hpp"
#include "sva/sig/signature.hpp"
#include "sva/util/error.hpp"
#include "sva/util/log.hpp"

namespace sva::engine {

namespace {

struct FrozenBase {
  BundleView view;
  EngineConfig config;
};

/// Loads the base bundle and validates it carries everything a delta
/// needs: the frozen model, the full vocabulary and the embedded
/// configuration.
FrozenBase load_frozen_base(ga::Context& ctx, const std::filesystem::path& path,
                            const char* what) {
  FrozenBase base;
  base.view = load_bundle(ctx, path);
  require(base.view.has_model,
          std::string(what) + ": base bundle carries no frozen model section "
                              "(exported from a result without an association matrix "
                              "or PCA basis); re-export it from a full engine run");
  require(!base.view.vocabulary.empty(),
          std::string(what) + ": base bundle carries no vocabulary section");
  require(!base.view.config_bytes.empty(),
          std::string(what) + ": base bundle carries no embedded engine configuration");
  base.config = decode_engine_config(base.view.config_bytes);
  return base;
}

/// Drift metrics vs the base generation and the advanced counters.  All
/// inputs are replicated, so every rank computes the identical verdict.
GenerationInfo next_generation(const BundleView& base, const cluster::AssignEval& eval,
                               std::uint64_t n_total, const DeltaOptions& options) {
  GenerationInfo g;
  g.generation = base.generation.generation + 1;
  g.parent_lineage = base.generation.lineage;
  g.base_records = base.num_records;
  g.new_records = n_total - base.num_records;

  const double base_per_doc =
      base.num_records > 0
          ? base.clustering.inertia / static_cast<double>(base.num_records)
          : 0.0;
  const double now_per_doc =
      n_total > 0 ? eval.inertia / static_cast<double>(n_total) : 0.0;
  g.inertia_rise = base_per_doc > 0.0 ? now_per_doc / base_per_doc - 1.0 : 0.0;

  const auto skew = [](const std::vector<std::int64_t>& sizes, std::uint64_t n) {
    if (n == 0 || sizes.empty()) return 0.0;
    std::int64_t largest = 0;
    for (const auto s : sizes) largest = std::max(largest, s);
    const double mean = static_cast<double>(n) / static_cast<double>(sizes.size());
    return static_cast<double>(largest) / mean;
  };
  g.size_skew = skew(eval.cluster_sizes, n_total);
  const double base_skew = skew(base.clustering.cluster_sizes, base.num_records);
  g.size_skew_rise = base_skew > 0.0 ? g.size_skew / base_skew - 1.0 : 0.0;

  g.max_inertia_rise = options.max_inertia_rise;
  g.max_size_skew_rise = options.max_size_skew_rise;
  g.recluster_recommended = g.inertia_rise > options.max_inertia_rise ||
                            g.size_skew_rise > options.max_size_skew_rise;
  return g;
}

std::vector<std::uint8_t> null_bytes(const std::vector<bool>& flags) {
  std::vector<std::uint8_t> out(flags.size());
  for (std::size_t i = 0; i < flags.size(); ++i) out[i] = flags[i] ? 1 : 0;
  return out;
}

/// Pure per-row projection through the frozen (padded) PCA basis — the
/// same pca.project a full run's project_documents applies, so the
/// coordinates are byte-identical.
std::vector<double> project_rows(const Matrix& rows, const cluster::PcaResult& pca) {
  const std::size_t comps = pca.components.rows();
  std::vector<double> xy;
  xy.reserve(rows.rows() * comps);
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    const auto p = pca.project(rows.row(i));
    xy.insert(xy.end(), p.begin(), p.end());
  }
  return xy;
}

DeltaReport report_of(const GenerationInfo& gen, std::uint64_t lineage) {
  DeltaReport report;
  report.generation = gen.generation;
  report.base_records = gen.base_records;
  report.new_records = gen.new_records;
  report.inertia_rise = gen.inertia_rise;
  report.size_skew = gen.size_skew;
  report.size_skew_rise = gen.size_skew_rise;
  report.recluster_recommended = gen.recluster_recommended;
  report.lineage = lineage;
  return report;
}

}  // namespace

DeltaReport ingest_delta(ga::Context& ctx, const std::filesystem::path& base_bundle,
                         const corpus::CorpusReader& new_docs,
                         const std::filesystem::path& out_bundle,
                         const DeltaOptions& options) {
  FrozenBase base = load_frozen_base(ctx, base_bundle, "ingest_delta");
  const BundleView& view = base.view;

  // Scan only the new documents (bounded-memory sharded path), then
  // compute their signatures in the frozen model's row order.
  ga::StageTimer timer(ctx);
  const IngestState ingest = ingest_sharded(ctx, new_docs, base.config.tokenizer,
                                            base.config.indexing, options.sharding, timer);
  const sig::MajorRowMap row_map(view.model.major_terms, *ingest.vocabulary);
  sig::AssociationMatrix association;
  association.weights = view.model.association;
  sig::SignatureSet new_sigs = sig::compute_signatures(ctx, ingest.records, row_map,
                                                       association, base.config.signature);
  // New documents append after the base corpus in global record order.
  for (auto& id : new_sigs.doc_ids) id += view.num_records;

  // Nearest-centroid evaluation over the full row set — inherited rows
  // straight from the base bundle plus the new rows — against the frozen
  // centroids.  The global point set is identical to a recompute over
  // the combined corpus, so the order-invariant inertia matches exactly.
  const std::size_t m = view.signatures.dimension;
  const std::size_t local_base = view.signatures.docvecs.rows();
  const std::size_t local_new = new_sigs.docvecs.rows();
  Matrix points(local_base + local_new, m);
  std::copy(view.signatures.docvecs.flat().begin(), view.signatures.docvecs.flat().end(),
            points.flat().begin());
  std::copy(new_sigs.docvecs.flat().begin(), new_sigs.docvecs.flat().end(),
            points.flat().begin() + static_cast<std::ptrdiff_t>(local_base * m));
  const cluster::AssignEval eval =
      cluster::assign_to_centroids(ctx, points, view.clustering.centroids);

  const std::uint64_t n_total = view.num_records + ingest.num_records;
  const GenerationInfo gen = next_generation(view, eval, n_total, options);

  // Merged corpus statistics: terms union (both lists are sorted), counts
  // additive.
  std::vector<std::string> vocab_union;
  vocab_union.reserve(view.vocabulary.size() + ingest.vocabulary->terms.size());
  std::set_union(view.vocabulary.begin(), view.vocabulary.end(),
                 ingest.vocabulary->terms.begin(), ingest.vocabulary->terms.end(),
                 std::back_inserter(vocab_union));
  const auto num_terms = static_cast<std::uint64_t>(vocab_union.size());
  const std::uint64_t total_occ =
      view.total_term_occurrences + ingest.total_term_occurrences;
  const std::uint64_t null_count =
      view.signatures.global_null_count + new_sigs.global_null_count;
  const std::uint64_t lineage =
      bundle_lineage(gen, n_total, num_terms, total_occ, null_count, eval.inertia);

  // Gather the global image: rank order == global doc order, base slices
  // first within each array, then the new slices.
  const std::vector<double> new_xy = project_rows(new_sigs.docvecs, view.model.pca);
  const auto base_null = null_bytes(view.signatures.is_null);
  const auto new_null = null_bytes(new_sigs.is_null);
  auto all_base_ids = ctx.gatherv(std::span<const std::uint64_t>(view.signatures.doc_ids), 0);
  auto all_new_ids = ctx.gatherv(std::span<const std::uint64_t>(new_sigs.doc_ids), 0);
  auto all_base_nulls = ctx.gatherv(std::span<const std::uint8_t>(base_null), 0);
  auto all_new_nulls = ctx.gatherv(std::span<const std::uint8_t>(new_null), 0);
  auto all_base_vecs = ctx.gatherv(
      std::span<const double>(view.signatures.docvecs.flat().data(),
                              view.signatures.docvecs.flat().size()),
      0);
  auto all_new_vecs = ctx.gatherv(
      std::span<const double>(new_sigs.docvecs.flat().data(), new_sigs.docvecs.flat().size()),
      0);
  auto all_base_assign =
      ctx.gatherv(std::span<const std::int32_t>(eval.assignment.data(), local_base), 0);
  auto all_new_assign = ctx.gatherv(
      std::span<const std::int32_t>(eval.assignment.data() + local_base, local_new), 0);
  auto all_base_proj_ids =
      ctx.gatherv(std::span<const std::uint64_t>(view.projection_doc_ids), 0);
  auto all_base_xy = ctx.gatherv(std::span<const double>(view.projection_xy), 0);
  auto all_new_xy = ctx.gatherv(std::span<const double>(new_xy), 0);

  if (ctx.rank() == 0) {
    const auto concat = [](auto& dst, const auto& tail) {
      dst.insert(dst.end(), tail.begin(), tail.end());
    };
    BundleData data;
    data.config_fingerprint = view.config_fingerprint;
    data.num_records = n_total;
    data.num_terms = num_terms;
    data.total_term_occurrences = total_occ;
    data.dimension = m;
    data.signature_rounds = view.signature_rounds;
    data.global_null_count = null_count;
    data.weights = view.weights;
    concat(data.weights, new_docs.doc_sizes());
    data.doc_ids = std::move(all_base_ids);
    concat(data.doc_ids, all_new_ids);
    data.null_flags = std::move(all_base_nulls);
    concat(data.null_flags, all_new_nulls);
    data.signature_rows = std::move(all_base_vecs);
    concat(data.signature_rows, all_new_vecs);
    data.iterations = view.clustering.iterations;
    data.inertia = eval.inertia;
    data.centroids = view.clustering.centroids;
    data.cluster_sizes = eval.cluster_sizes;
    data.assignment = std::move(all_base_assign);
    concat(data.assignment, all_new_assign);
    data.theme_labels = view.theme_labels;
    data.topic_term_names = view.topic_term_names;
    data.projection_components = view.projection_components;
    data.projection_doc_ids = std::move(all_base_proj_ids);
    concat(data.projection_doc_ids, all_new_ids);
    data.projection_xy = std::move(all_base_xy);
    concat(data.projection_xy, all_new_xy);
    data.generation = gen;
    data.vocabulary = std::move(vocab_union);
    data.model = view.model;
    data.config_bytes = view.config_bytes;
    write_bundle_data(data, out_bundle);
  }
  ctx.barrier();

  log::debug("delta") << "generation " << gen.generation << ": +" << gen.new_records
                      << " records, inertia rise " << gen.inertia_rise << ", skew rise "
                      << gen.size_skew_rise
                      << (gen.recluster_recommended ? " (full re-cluster recommended)" : "");
  return report_of(gen, lineage);
}

DeltaReport recompute_generation(ga::Context& ctx, const std::filesystem::path& base_bundle,
                                 const corpus::CorpusReader& combined,
                                 const std::filesystem::path& out_bundle,
                                 const DeltaOptions& options) {
  FrozenBase base = load_frozen_base(ctx, base_bundle, "recompute_generation");
  const BundleView& view = base.view;

  // Full scan of the combined corpus, signatures under the frozen model.
  ga::StageTimer timer(ctx);
  const IngestState ingest = ingest_sharded(ctx, combined, base.config.tokenizer,
                                            base.config.indexing, options.sharding, timer);
  require(ingest.num_records >= view.num_records,
          "recompute_generation: combined corpus is smaller than the base generation");
  const sig::MajorRowMap row_map(view.model.major_terms, *ingest.vocabulary);
  sig::AssociationMatrix association;
  association.weights = view.model.association;
  const sig::SignatureSet sigs = sig::compute_signatures(ctx, ingest.records, row_map,
                                                         association, base.config.signature);
  const cluster::AssignEval eval =
      cluster::assign_to_centroids(ctx, sigs.docvecs, view.clustering.centroids);

  const std::uint64_t n_total = ingest.num_records;
  const GenerationInfo gen = next_generation(view, eval, n_total, options);
  const std::uint64_t lineage =
      bundle_lineage(gen, n_total, ingest.num_terms, ingest.total_term_occurrences,
                     sigs.global_null_count, eval.inertia);

  const std::vector<double> xy = project_rows(sigs.docvecs, view.model.pca);
  const auto nulls = null_bytes(sigs.is_null);
  auto all_ids = ctx.gatherv(std::span<const std::uint64_t>(sigs.doc_ids), 0);
  auto all_nulls = ctx.gatherv(std::span<const std::uint8_t>(nulls), 0);
  auto all_vecs = ctx.gatherv(
      std::span<const double>(sigs.docvecs.flat().data(), sigs.docvecs.flat().size()), 0);
  auto all_assign = ctx.gatherv(std::span<const std::int32_t>(eval.assignment), 0);
  auto all_xy = ctx.gatherv(std::span<const double>(xy), 0);

  if (ctx.rank() == 0) {
    BundleData data;
    data.config_fingerprint = view.config_fingerprint;
    data.num_records = n_total;
    data.num_terms = ingest.num_terms;
    data.total_term_occurrences = ingest.total_term_occurrences;
    data.dimension = view.signatures.dimension;
    data.signature_rounds = view.signature_rounds;
    data.global_null_count = sigs.global_null_count;
    data.weights = combined.doc_sizes();
    data.doc_ids = std::move(all_ids);
    data.null_flags = std::move(all_nulls);
    data.signature_rows = std::move(all_vecs);
    data.iterations = view.clustering.iterations;
    data.inertia = eval.inertia;
    data.centroids = view.clustering.centroids;
    data.cluster_sizes = eval.cluster_sizes;
    data.assignment = std::move(all_assign);
    data.theme_labels = view.theme_labels;
    data.topic_term_names = view.topic_term_names;
    data.projection_components = view.projection_components;
    data.projection_doc_ids = data.doc_ids;
    data.projection_xy = std::move(all_xy);
    data.generation = gen;
    data.vocabulary = ingest.vocabulary->terms;
    data.model = view.model;
    data.config_bytes = view.config_bytes;
    write_bundle_data(data, out_bundle);
  }
  ctx.barrier();
  return report_of(gen, lineage);
}

}  // namespace sva::engine
