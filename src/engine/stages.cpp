#include "sva/engine/stages.hpp"

#include <algorithm>

#include "sva/ga/repro_sum.hpp"
#include "sva/util/error.hpp"
#include "sva/util/log.hpp"

namespace sva::engine {

SignatureStageState run_signature_stage(ga::Context& ctx, const IngestState& ingest,
                                        const EngineConfig& config, ga::StageTimer& timer) {
  // The adaptive loop is unrolled here (rather than calling
  // sig::generate_signatures) so each sub-stage lands in its own timing
  // bucket even across rounds.
  SignatureStageState state;
  sig::TopicalityConfig topicality = config.topicality;
  const auto total_records = ingest.num_records;
  int round = 0;
  while (true) {
    ++round;
    state.selection = sig::select_topics(ctx, ingest.stats, topicality);
    timer.mark("topic");

    state.association = sig::build_association_matrix(
        ctx, ingest.records, state.selection, ingest.stats.num_records, config.association);
    timer.mark("AM");

    state.signatures = sig::compute_signatures(ctx, ingest.records, state.selection,
                                               state.association, config.signature);
    timer.mark("DocVec");

    const double null_fraction =
        total_records == 0 ? 0.0
                           : static_cast<double>(state.signatures.global_null_count) /
                                 static_cast<double>(total_records);
    state.null_fraction_per_round.push_back(null_fraction);
    state.signature_rounds = round;

    if (!config.signature.adaptive) break;
    if (null_fraction <= config.signature.max_null_fraction) break;
    if (round >= config.signature.max_rounds) break;
    if (state.selection.n() < topicality.num_major_terms) break;

    const auto grown = static_cast<std::size_t>(
        config.signature.growth_factor * static_cast<double>(topicality.num_major_terms));
    topicality.num_major_terms = std::max(grown, topicality.num_major_terms + 1);
    log::debug("engine") << "adaptive dimensionality round " << round << ": null fraction "
                         << null_fraction << ", growing N to " << topicality.num_major_terms;
  }
  return state;
}

ClusterStageState run_cluster_stage(ga::Context& ctx, const SignatureStageState& sig_state,
                                    const EngineConfig& config, ga::StageTimer& timer) {
  ClusterStageState state;
  if (config.clustering == ClusteringBackend::kKMeans) {
    state.clustering =
        cluster::kmeans_cluster(ctx, sig_state.signatures.docvecs, config.kmeans);
  } else {
    const cluster::HierarchicalResult h = cluster::hierarchical_cluster(
        ctx, sig_state.signatures.docvecs, config.hierarchical);
    state.clustering.centroids = h.centroids;
    state.clustering.assignment = h.assignment;
    state.clustering.cluster_sizes = h.cluster_sizes;
    state.clustering.iterations = 1;
    // Order-invariant accumulation keeps the inertia byte-identical
    // across processor counts.  Signatures and centroids are
    // L1-normalized (or zero), so each squared Euclidean distance is at
    // most (||a||_2 + ||c||_2)^2 <= (||a||_1 + ||c||_1)^2 <= 4.
    ga::ReproducibleSum inertia_acc(1, 4.0);
    for (std::size_t i = 0; i < sig_state.signatures.docvecs.rows(); ++i) {
      inertia_acc.add(0, squared_distance(
                             sig_state.signatures.docvecs.row(i),
                             h.centroids.row(static_cast<std::size_t>(h.assignment[i]))));
    }
    state.clustering.inertia = inertia_acc.allreduce_sum(ctx)[0];
  }
  timer.mark("ClusProj");
  return state;
}

ProjectionStageState run_projection_stage(ga::Context& ctx, const IngestState& ingest,
                                          const SignatureStageState& sig_state,
                                          const ClusterStageState& cluster_state,
                                          const EngineConfig& config, ga::StageTimer& timer) {
  ProjectionStageState state;
  const cluster::KMeansResult& clustering = cluster_state.clustering;

  require(config.projection_components >= 2 && config.projection_components <= 3,
          "run_text_engine: projection_components must be 2 or 3");
  // Degenerate topic spaces (M smaller than the view dimension, e.g. a
  // one-term vocabulary) still produce a valid view: PCA keeps whatever
  // components exist and the missing view axes are zero-padded.
  const std::size_t pca_components =
      std::min(config.projection_components, clustering.centroids.cols());
  cluster::PcaResult pca = cluster::pca_fit(clustering.centroids, pca_components);
  if (pca.components.rows() < config.projection_components) {
    Matrix padded(config.projection_components, pca.components.cols());
    for (std::size_t r = 0; r < pca.components.rows(); ++r) {
      const auto src = pca.components.row(r);
      std::copy(src.begin(), src.end(), padded.row(r).begin());
    }
    pca.components = std::move(padded);
    pca.eigenvalues.resize(config.projection_components, 0.0);
  }
  state.projection = cluster::project_documents(ctx, sig_state.signatures.docvecs,
                                                sig_state.signatures.doc_ids, pca);
  state.pca = std::move(pca);
  state.all_assignment =
      ctx.gatherv(std::span<const std::int32_t>(clustering.assignment), 0);

  // Theme labels: strongest topic dimensions of each centroid.
  if (config.theme_label_terms > 0) {
    const std::size_t k = clustering.centroids.rows();
    const std::size_t m = clustering.centroids.cols();
    state.theme_labels.resize(k);
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<std::size_t> dims(m);
      for (std::size_t j = 0; j < m; ++j) dims[j] = j;
      const auto centroid = clustering.centroids.row(c);
      std::sort(dims.begin(), dims.end(), [&](std::size_t a, std::size_t b) {
        if (centroid[a] != centroid[b]) return centroid[a] > centroid[b];
        return a < b;
      });
      const std::size_t take = std::min(config.theme_label_terms, m);
      for (std::size_t j = 0; j < take; ++j) {
        const auto term_id =
            static_cast<std::size_t>(sig_state.selection.topic_terms[dims[j]]);
        state.theme_labels[c].push_back(ingest.vocabulary->terms[term_id]);
      }
    }
  }
  timer.mark("ClusProj");
  return state;
}

ComponentTimings fold_timings(const ga::StageTimer& timer) {
  ComponentTimings timings;
  for (const auto& [name, seconds] : timer.stages()) {
    if (name == "scan") timings.scan += seconds;
    else if (name == "index") timings.index += seconds;
    else if (name == "topic") timings.topic += seconds;
    else if (name == "AM") timings.am += seconds;
    else if (name == "DocVec") timings.docvec += seconds;
    else if (name == "ClusProj") timings.clusproj += seconds;
  }
  return timings;
}

EngineResult assemble_result(IngestState&& ingest, SignatureStageState&& sig_state,
                             ClusterStageState&& cluster_state,
                             ProjectionStageState&& projection_state,
                             const ComponentTimings& timings) {
  EngineResult result;
  result.vocabulary = std::move(ingest.vocabulary);
  result.num_records = ingest.num_records;
  result.num_terms = ingest.num_terms;
  result.total_term_occurrences = ingest.total_term_occurrences;
  result.index_load_balance = std::move(ingest.load_balance);

  result.selection = std::move(sig_state.selection);
  result.association = std::move(sig_state.association);
  result.signatures = std::move(sig_state.signatures);
  result.dimension = result.signatures.dimension;
  result.signature_rounds = sig_state.signature_rounds;
  result.null_fraction_per_round = std::move(sig_state.null_fraction_per_round);

  result.clustering = std::move(cluster_state.clustering);
  result.projection = std::move(projection_state.projection);
  result.pca = std::move(projection_state.pca);
  result.all_assignment = std::move(projection_state.all_assignment);
  result.theme_labels = std::move(projection_state.theme_labels);

  result.timings = timings;
  return result;
}

}  // namespace sva::engine
