#include "sva/engine/engine.hpp"

#include <utility>

#include "sva/engine/bundle.hpp"
#include "sva/engine/digest.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::engine {

namespace {

ComponentTimings add_timings(const ComponentTimings& a, const ComponentTimings& b) {
  ComponentTimings out;
  out.scan = a.scan + b.scan;
  out.index = a.index + b.index;
  out.topic = a.topic + b.topic;
  out.am = a.am + b.am;
  out.docvec = a.docvec + b.docvec;
  out.clusproj = a.clusproj + b.clusproj;
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_engine_config(const EngineConfig& config) {
  ByteWriter w;
  const auto& tok = config.tokenizer;
  w.str(tok.delimiters);
  w.u64(tok.lowercase ? 1 : 0);
  w.u64(tok.min_length);
  w.u64(tok.max_length);
  w.u64(tok.drop_numeric ? 1 : 0);
  w.u64(tok.use_stopwords ? 1 : 0);
  w.u64(tok.extra_stopwords.size());
  for (const auto& s : tok.extra_stopwords) w.str(s);
  w.u64(tok.stem ? 1 : 0);

  const auto& idx = config.indexing;
  w.u64(static_cast<std::uint64_t>(idx.scheduling));
  w.u64(idx.chunk_fields);
  w.u64(idx.vtime_ordered_claims ? 1 : 0);

  const auto& top = config.topicality;
  w.u64(top.num_major_terms);
  w.f64(top.topic_fraction);
  w.u64(static_cast<std::uint64_t>(top.min_doc_frequency));
  w.f64(top.max_df_fraction);

  w.u64(static_cast<std::uint64_t>(config.association.weighting));

  const auto& sig = config.signature;
  w.f64(sig.null_threshold);
  w.u64(sig.adaptive ? 1 : 0);
  w.f64(sig.max_null_fraction);
  w.f64(sig.growth_factor);
  w.u64(static_cast<std::uint64_t>(sig.max_rounds));

  w.u64(static_cast<std::uint64_t>(config.clustering));
  const auto& km = config.kmeans;
  w.u64(km.k);
  w.u64(static_cast<std::uint64_t>(km.max_iterations));
  w.f64(km.tolerance);
  w.u64(km.seed);
  w.u64(km.seed_sample_total);
  const auto& h = config.hierarchical;
  w.u64(static_cast<std::uint64_t>(h.linkage));
  w.u64(h.k);
  w.u64(h.min_k);
  w.u64(h.max_k);
  w.u64(h.seed_sample_total);

  w.u64(config.projection_components);
  w.u64(config.theme_label_terms);
  return std::move(w.bytes);
}

EngineConfig decode_engine_config(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  EngineConfig config;
  auto& tok = config.tokenizer;
  tok.delimiters = r.str();
  tok.lowercase = r.u64() != 0;
  tok.min_length = static_cast<std::size_t>(r.u64());
  tok.max_length = static_cast<std::size_t>(r.u64());
  tok.drop_numeric = r.u64() != 0;
  tok.use_stopwords = r.u64() != 0;
  const std::uint64_t n_stop = r.u64();
  require_format(n_stop <= (1u << 20), "engine config: implausible stopword count");
  tok.extra_stopwords.clear();
  tok.extra_stopwords.reserve(static_cast<std::size_t>(n_stop));
  for (std::uint64_t i = 0; i < n_stop; ++i) tok.extra_stopwords.push_back(r.str());
  tok.stem = r.u64() != 0;

  auto& idx = config.indexing;
  idx.scheduling = static_cast<ga::Scheduling>(r.u64());
  idx.chunk_fields = static_cast<std::size_t>(r.u64());
  idx.vtime_ordered_claims = r.u64() != 0;

  auto& top = config.topicality;
  top.num_major_terms = static_cast<std::size_t>(r.u64());
  top.topic_fraction = r.f64();
  top.min_doc_frequency = static_cast<std::int64_t>(r.u64());
  top.max_df_fraction = r.f64();

  config.association.weighting = static_cast<sig::AssociationWeighting>(r.u64());

  auto& sig = config.signature;
  sig.null_threshold = r.f64();
  sig.adaptive = r.u64() != 0;
  sig.max_null_fraction = r.f64();
  sig.growth_factor = r.f64();
  sig.max_rounds = static_cast<int>(r.u64());

  config.clustering = static_cast<ClusteringBackend>(r.u64());
  auto& km = config.kmeans;
  km.k = static_cast<std::size_t>(r.u64());
  km.max_iterations = static_cast<int>(r.u64());
  km.tolerance = r.f64();
  km.seed = r.u64();
  km.seed_sample_total = static_cast<std::size_t>(r.u64());
  auto& h = config.hierarchical;
  h.linkage = static_cast<cluster::Linkage>(r.u64());
  h.k = static_cast<std::size_t>(r.u64());
  h.min_k = static_cast<std::size_t>(r.u64());
  h.max_k = static_cast<std::size_t>(r.u64());
  h.seed_sample_total = static_cast<std::size_t>(r.u64());

  config.projection_components = static_cast<std::size_t>(r.u64());
  config.theme_label_terms = static_cast<std::size_t>(r.u64());
  r.expect_done();
  return config;
}

std::uint64_t Engine::config_fingerprint(const EngineConfig& config) {
  const std::vector<std::uint8_t> bytes = encode_engine_config(config);
  return fnv1a64(bytes.data(), bytes.size());
}

std::optional<EngineResult> Engine::run(ga::Context& ctx, const corpus::CorpusReader& reader,
                                        const PipelineOptions& options) {
  const bool checkpoint = !options.checkpoint_dir.empty();
  require(!options.stop_after || checkpoint,
          "Engine::run: stop_after requires a checkpoint_dir");
  const std::uint64_t fp = config_fingerprint(config_);

  ga::StageTimer timer(ctx);
  IngestState ingest = ingest_sharded(ctx, reader, config_.tokenizer, config_.indexing,
                                      options.sharding, timer);
  if (checkpoint) {
    save_ingest_checkpoint(ctx, options.checkpoint_dir, ingest, fold_timings(timer), fp);
  }
  if (options.stop_after == Stage::kIngest) return std::nullopt;

  SignatureStageState sig_state = run_signature_stage(ctx, ingest, config_, timer);
  if (checkpoint) {
    save_signature_checkpoint(ctx, options.checkpoint_dir, sig_state, fold_timings(timer),
                              fp);
  }
  if (options.stop_after == Stage::kSignatures) return std::nullopt;

  ClusterStageState cluster_state = run_cluster_stage(ctx, sig_state, config_, timer);
  if (checkpoint) {
    save_cluster_checkpoint(ctx, options.checkpoint_dir, cluster_state, fold_timings(timer),
                            fp);
  }
  if (options.stop_after == Stage::kCluster) return std::nullopt;

  ProjectionStageState projection_state =
      run_projection_stage(ctx, ingest, sig_state, cluster_state, config_, timer);
  const ComponentTimings timings = fold_timings(timer);
  if (checkpoint) {
    save_final_checkpoint(ctx, options.checkpoint_dir, projection_state, timings, fp);
  }

  // Bundle export wants the global per-document raw byte sizes as the
  // row-partition weights; gather them before ingest is consumed.
  std::vector<std::size_t> record_sizes;
  if (!options.export_bundle.empty()) {
    std::vector<std::uint64_t> my_sizes;
    my_sizes.reserve(ingest.records.size());
    for (const auto& rec : ingest.records) my_sizes.push_back(rec.raw_bytes);
    const auto all_sizes = ctx.gatherv(std::span<const std::uint64_t>(my_sizes), 0);
    record_sizes.assign(all_sizes.begin(), all_sizes.end());
  }

  EngineResult result =
      assemble_result(std::move(ingest), std::move(sig_state), std::move(cluster_state),
                      std::move(projection_state), timings);
  if (!options.export_bundle.empty()) {
    export_bundle(ctx, result, config_, options.export_bundle, record_sizes);
  }
  return result;
}

EngineResult Engine::resume(ga::Context& ctx, const std::filesystem::path& checkpoint_dir,
                            const std::filesystem::path& export_bundle_path) {
  const std::uint64_t fp = config_fingerprint(config_);

  int last = -1;
  if (ctx.rank() == 0) {
    const auto stage = last_completed_stage(checkpoint_dir);
    last = stage ? static_cast<int>(*stage) : -1;
  }
  ctx.broadcast_value(last, 0);
  require(last >= 0,
          "Engine::resume: no usable checkpoint in " + checkpoint_dir.string());
  const auto last_stage = static_cast<Stage>(last);

  // The ingest state is always needed (vocabulary, counts, partition);
  // records and statistics only when stages 3-5 must be recomputed.
  IngestCheckpoint ingest =
      load_ingest_checkpoint(ctx, checkpoint_dir, fp, last_stage == Stage::kIngest);
  ComponentTimings base = ingest.timings;  // cumulative at the restored stage
  ga::StageTimer timer(ctx);               // recomputed stages accumulate here

  SignatureStageState sig_state;
  if (last_stage >= Stage::kSignatures) {
    SignatureCheckpoint restored =
        load_signature_checkpoint(ctx, checkpoint_dir, fp, ingest.record_sizes);
    sig_state = std::move(restored.state);
    base = restored.timings;
  } else {
    sig_state = run_signature_stage(ctx, ingest.state, config_, timer);
    save_signature_checkpoint(ctx, checkpoint_dir, sig_state,
                              add_timings(base, fold_timings(timer)), fp);
  }

  ClusterStageState cluster_state;
  std::vector<std::int32_t> restored_assignment;
  if (last_stage >= Stage::kCluster) {
    ClusterCheckpoint restored =
        load_cluster_checkpoint(ctx, checkpoint_dir, fp, ingest.record_sizes);
    cluster_state = std::move(restored.state);
    restored_assignment = std::move(restored.all_assignment);
    base = restored.timings;
  } else {
    cluster_state = run_cluster_stage(ctx, sig_state, config_, timer);
    save_cluster_checkpoint(ctx, checkpoint_dir, cluster_state,
                            add_timings(base, fold_timings(timer)), fp);
  }

  ProjectionStageState projection_state;
  ComponentTimings final_timings;
  if (last_stage >= Stage::kFinal) {
    FinalCheckpoint restored =
        load_final_checkpoint(ctx, checkpoint_dir, fp, ingest.record_sizes);
    projection_state = std::move(restored.state);
    projection_state.all_assignment = std::move(restored_assignment);
    final_timings = restored.timings;
  } else {
    projection_state =
        run_projection_stage(ctx, ingest.state, sig_state, cluster_state, config_, timer);
    final_timings = add_timings(base, fold_timings(timer));
    save_final_checkpoint(ctx, checkpoint_dir, projection_state, final_timings, fp);
  }

  EngineResult result =
      assemble_result(std::move(ingest.state), std::move(sig_state),
                      std::move(cluster_state), std::move(projection_state), final_timings);
  if (!export_bundle_path.empty()) {
    // The ingest checkpoint already carries the global byte sizes.
    export_bundle(ctx, result, config_, export_bundle_path, ingest.record_sizes);
  }
  return result;
}

}  // namespace sva::engine
