#include "sva/corpus/document.hpp"

#include <algorithm>

#include "sva/util/error.hpp"

namespace sva::corpus {

std::vector<std::pair<std::size_t, std::size_t>> partition_sizes_by_bytes(
    const std::vector<std::size_t>& doc_sizes, int nprocs) {
  require(nprocs >= 1, "partition_by_bytes: nprocs must be >= 1");
  const std::size_t n = doc_sizes.size();
  std::vector<std::pair<std::size_t, std::size_t>> parts(static_cast<std::size_t>(nprocs));

  // Walk documents once, cutting a new partition whenever the running byte
  // count passes the next equal-share boundary.  Contiguity preserves
  // document order (stable record ids) while byte balancing matches the
  // paper's partitioning criterion.
  std::size_t total_bytes = 0;
  for (const std::size_t b : doc_sizes) total_bytes += b;
  const double total = static_cast<double>(std::max<std::size_t>(total_bytes, 1));
  const double share = total / nprocs;

  std::size_t doc = 0;
  double consumed = 0.0;
  for (int r = 0; r < nprocs; ++r) {
    const std::size_t begin = doc;
    const double boundary = share * (r + 1);
    while (doc < n && (consumed < boundary || r == nprocs - 1)) {
      consumed += static_cast<double>(doc_sizes[doc]);
      ++doc;
      // Stop as soon as we cross the boundary so later ranks get work too.
      if (r != nprocs - 1 && consumed >= boundary) break;
    }
    parts[static_cast<std::size_t>(r)] = {begin, doc};
  }
  parts.back().second = n;
  return parts;
}

std::vector<std::pair<std::size_t, std::size_t>> partition_by_bytes(const SourceSet& sources,
                                                                    int nprocs) {
  std::vector<std::size_t> sizes;
  sizes.reserve(sources.size());
  for (const auto& doc : sources.docs()) sizes.push_back(doc.bytes());
  return partition_sizes_by_bytes(sizes, nprocs);
}

}  // namespace sva::corpus
