#include "sva/corpus/reader.hpp"

#include <algorithm>

#include "sva/util/error.hpp"

namespace sva::corpus {

std::size_t CorpusReader::total_bytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < size(); ++i) total += doc_bytes(i);
  return total;
}

std::vector<std::size_t> CorpusReader::doc_sizes() const {
  std::vector<std::size_t> sizes(size());
  for (std::size_t i = 0; i < sizes.size(); ++i) sizes[i] = doc_bytes(i);
  return sizes;
}

GeneratedReader::GeneratedReader(const CorpusSpec& spec) : generator_(spec) {
  // Metadata pass: same termination rule as generate_corpus, but each
  // document is dropped as soon as its size is recorded.
  std::size_t total = 0;
  std::uint64_t doc_seq = 0;
  while (total < spec.target_bytes) {
    const std::size_t bytes = generator_.make(doc_seq).bytes();
    total += bytes;
    sizes_.push_back(bytes);
    ++doc_seq;
  }
}

RawDocument GeneratedReader::read(std::size_t i) const {
  require(i < sizes_.size(), "GeneratedReader: document index out of range");
  return generator_.make(static_cast<std::uint64_t>(i));
}

std::vector<std::pair<std::size_t, std::size_t>> plan_shards(const CorpusReader& reader,
                                                             const ShardingConfig& config) {
  std::size_t shards = std::max<std::size_t>(config.num_shards, 1);
  if (config.mem_budget_bytes > 0) {
    const std::size_t total = reader.total_bytes();
    const std::size_t needed =
        (total + config.mem_budget_bytes - 1) / config.mem_budget_bytes;
    shards = std::max(shards, std::max<std::size_t>(needed, 1));
  }
  require(shards <= (1u << 20), "plan_shards: implausible shard count");
  return partition_sizes_by_bytes(reader.doc_sizes(), static_cast<int>(shards));
}

}  // namespace sva::corpus
