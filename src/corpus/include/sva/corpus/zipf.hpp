// Zipf-distributed sampling over ranked vocabularies.
//
// Natural-language term frequencies are famously Zipfian; both synthetic
// corpora sample token ranks from Zipf(s) so that the engine sees
// realistic vocabulary skew (few very frequent terms, a long tail), which
// is what stresses the inverted-file indexing load balance.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sva/util/error.hpp"
#include "sva/util/rng.hpp"

namespace sva::corpus {

class ZipfSampler {
 public:
  /// Zipf over ranks [0, n) with exponent `s` (weights (rank+1)^-s).
  ZipfSampler(std::size_t n, double s) {
    require(n >= 1, "ZipfSampler: n must be >= 1");
    require(s >= 0.0, "ZipfSampler: exponent must be >= 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += std::pow(static_cast<double>(i + 1), -s);
      cdf_[i] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }

  /// Draws a rank in [0, n).
  [[nodiscard]] std::size_t sample(Xoshiro256& rng) const {
    const double u = rng.uniform();
    // Binary search for the first cdf >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Probability mass of a rank (for tests validating the fit).
  [[nodiscard]] double pmf(std::size_t rank) const {
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace sva::corpus
