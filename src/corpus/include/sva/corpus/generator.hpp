// Synthetic corpus generators standing in for the paper's datasets.
//
// The paper evaluates on PubMed (NIH biomedical abstracts; "consistent in
// both size and language type") and TREC GOV2 (a noisy .gov web crawl with
// wildly varying document sizes).  Neither corpus is redistributable here,
// so we synthesize corpora that preserve the properties the engine's
// behaviour depends on:
//
//   * Zipfian term-frequency skew (vocabulary breadth differs per corpus);
//   * latent topical structure — each document draws a latent theme and
//     mixes theme-specific vocabulary over a background distribution, so
//     topicality, the association matrix, clustering and projection all
//     operate on real signal;
//   * document-length distributions — tight and regular for PubMed-like,
//     heavy-tailed with occasional giant pages for TREC-like (this is what
//     creates the indexing load imbalance of Figure 9);
//   * field structure — PubMed records carry TI/AB/AU/MH fields, TREC
//     pages carry title/body plus markup residue tokens.
//
// Generation is fully deterministic in (spec, seed): document i is
// produced from an RNG substream keyed by i, independent of generation
// order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sva/corpus/document.hpp"

namespace sva::corpus {

enum class CorpusKind {
  kPubMedLike,  ///< regular, consistent biomedical-abstract-style records
  kTrecLike,    ///< heavy-tailed, noisy web-page-style records
};

struct CorpusSpec {
  CorpusKind kind = CorpusKind::kPubMedLike;
  std::uint64_t seed = 42;
  std::size_t target_bytes = 1 << 20;  ///< generate docs until this size

  // Vocabulary model.
  std::size_t core_vocabulary = 20000;   ///< background vocabulary breadth
  std::size_t num_themes = 24;           ///< latent topical groups
  std::size_t theme_vocabulary = 400;    ///< theme-specific words per theme
  double theme_token_fraction = 0.28;    ///< P(token drawn from doc's theme)
  double zipf_exponent = 1.05;           ///< background skew

  // TREC-only noise controls.
  double noise_token_fraction = 0.08;  ///< numbers / urls / markup residue
  double giant_doc_fraction = 0.004;   ///< fraction of very large pages

  /// Highest word id the generator can emit (for tests sizing oracles).
  [[nodiscard]] std::size_t max_word_id() const {
    return core_vocabulary + num_themes * theme_vocabulary;
  }
};

/// Generates a corpus per `spec`.  Deterministic in the spec.
SourceSet generate_corpus(const CorpusSpec& spec);

/// Per-document generator: materializes the exact documents
/// generate_corpus(spec) produces, one at a time.  Document i is a pure
/// function of (spec, i), so callers can fetch documents in any order —
/// or concurrently — without holding the rest of the corpus.  This is
/// the substrate of the out-of-core GeneratedReader.
class DocumentGenerator {
 public:
  explicit DocumentGenerator(CorpusSpec spec);
  ~DocumentGenerator();
  DocumentGenerator(DocumentGenerator&&) noexcept;
  DocumentGenerator& operator=(DocumentGenerator&&) noexcept;

  [[nodiscard]] const CorpusSpec& spec() const;

  /// Document `doc_seq` of the corpus.  Thread-safe.
  [[nodiscard]] RawDocument make(std::uint64_t doc_seq) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The latent theme the generator assigned to document `doc_seq`
/// (sequence number within the corpus).  Exposed so tests and benches can
/// validate clustering against ground truth.
std::size_t ground_truth_theme(const CorpusSpec& spec, std::uint64_t doc_seq);

/// Name used in reports ("pubmed-like", "trec-like").
std::string corpus_kind_name(CorpusKind kind);

/// Convenience presets reproducing the paper's two dataset families at a
/// reduced scale factor (bytes).  `size_index` selects S1/S2/S3, whose
/// ratios match the paper's (PubMed 2.75:6.67:16.44 GB, TREC 1:4:8.21 GB).
CorpusSpec pubmed_like_spec(int size_index, std::size_t s1_bytes);
CorpusSpec trec_like_spec(int size_index, std::size_t s1_bytes);

}  // namespace sva::corpus
