// Raw document model: what the scanner consumes.
//
// Matching the paper's terminology (§2.1): a *source* is a collection of
// documents/records; each record is a set of fields; each field is a
// collection of terms.  RawDocument carries unparsed field text — term
// identification is the scanner's job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sva::corpus {

struct RawField {
  std::string name;  ///< e.g. "TI", "AB" (PubMed) or "title", "body" (TREC)
  std::string text;  ///< unparsed field content
};

struct RawDocument {
  std::uint64_t id = 0;  ///< stable global record id
  std::vector<RawField> fields;

  /// Byte size used for load-balanced source partitioning.
  [[nodiscard]] std::size_t bytes() const {
    std::size_t n = 0;
    for (const auto& f : fields) n += f.name.size() + f.text.size();
    return n;
  }
};

/// A source dataset: ordered documents plus cached size information.
class SourceSet {
 public:
  SourceSet() = default;

  void add(RawDocument doc) {
    total_bytes_ += doc.bytes();
    docs_.push_back(std::move(doc));
  }

  [[nodiscard]] const std::vector<RawDocument>& docs() const { return docs_; }
  [[nodiscard]] std::size_t size() const { return docs_.size(); }
  [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] const RawDocument& operator[](std::size_t i) const { return docs_[i]; }

 private:
  std::vector<RawDocument> docs_;
  std::size_t total_bytes_ = 0;
};

/// Contiguous per-rank document ranges balanced by byte size — the
/// paper's static source partitioning ("based on the size of individual
/// documents (bytes)", §3.2).  Returns nprocs half-open [begin, end)
/// index pairs covering the whole set in order.
std::vector<std::pair<std::size_t, std::size_t>> partition_by_bytes(const SourceSet& sources,
                                                                    int nprocs);

/// Same cut, driven by a size-metadata vector instead of resident
/// documents, so out-of-core readers and checkpoint resume can reproduce
/// the exact partition without materializing any document.
std::vector<std::pair<std::size_t, std::size_t>> partition_sizes_by_bytes(
    const std::vector<std::size_t>& doc_sizes, int nprocs);

}  // namespace sva::corpus
