// Out-of-core corpus access and shard planning.
//
// The paper's engine assumes the whole corpus is handed to every rank in
// one pass; the sharded ingestion pipeline instead streams the corpus
// through a CorpusReader: cheap byte-size metadata up front (for shard
// planning and the paper's byte-balanced source partitioning) and
// on-demand materialization of individual documents.  Only the documents
// of the shard being scanned are ever resident.
//
//   * InMemoryReader adapts an existing SourceSet (no copies);
//   * GeneratedReader materializes synthetic documents one at a time —
//     generation is a pure function of (spec, doc_seq), so corpora far
//     beyond memory can be ingested shard by shard.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sva/corpus/document.hpp"
#include "sva/corpus/generator.hpp"

namespace sva::corpus {

/// Position-addressed document source.  `read` must be thread-safe: all
/// ranks of an SPMD world pull their slices concurrently.
class CorpusReader {
 public:
  virtual ~CorpusReader() = default;

  /// Number of documents in the corpus.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Byte size of document `i` — metadata only, must not require
  /// materializing the document for readers that can avoid it.
  [[nodiscard]] virtual std::size_t doc_bytes(std::size_t i) const = 0;

  /// Materializes document `i`.  Thread-safe, any order.
  [[nodiscard]] virtual RawDocument read(std::size_t i) const = 0;

  /// Zero-copy access for scan loops: returns a pointer either into the
  /// reader's resident storage or to `scratch` after filling it.  The
  /// pointer is valid until the next fetch through the same scratch.
  [[nodiscard]] virtual const RawDocument* fetch(std::size_t i, RawDocument& scratch) const {
    scratch = read(i);
    return &scratch;
  }

  [[nodiscard]] std::size_t total_bytes() const;

  /// Per-document byte sizes in position order (shard planning input).
  [[nodiscard]] std::vector<std::size_t> doc_sizes() const;
};

/// Zero-copy adapter over a resident SourceSet.
class InMemoryReader final : public CorpusReader {
 public:
  explicit InMemoryReader(const SourceSet& sources) : sources_(&sources) {}

  [[nodiscard]] std::size_t size() const override { return sources_->size(); }
  [[nodiscard]] std::size_t doc_bytes(std::size_t i) const override {
    return (*sources_)[i].bytes();
  }
  [[nodiscard]] RawDocument read(std::size_t i) const override { return (*sources_)[i]; }
  [[nodiscard]] const RawDocument* fetch(std::size_t i, RawDocument&) const override {
    return &(*sources_)[i];
  }

 private:
  const SourceSet* sources_;
};

/// Streams a synthetic corpus without ever holding it whole: a one-time
/// metadata pass records per-document byte sizes (documents are generated
/// and immediately dropped), after which read(i) regenerates document i
/// on demand.
class GeneratedReader final : public CorpusReader {
 public:
  explicit GeneratedReader(const CorpusSpec& spec);

  [[nodiscard]] std::size_t size() const override { return sizes_.size(); }
  [[nodiscard]] std::size_t doc_bytes(std::size_t i) const override { return sizes_[i]; }
  [[nodiscard]] RawDocument read(std::size_t i) const override;

 private:
  DocumentGenerator generator_;
  std::vector<std::size_t> sizes_;
};

/// Contiguous window [begin, end) of another reader (position j here
/// reads position begin+j underneath), with document ids *rebased* to
/// slice-local positions 0..size()-1.  The delta-ingestion driver uses
/// this to treat the tail of a combined corpus as "the new documents":
/// engine::ingest_delta expects position ids from its reader and assigns
/// the global ids (base_records + position) itself.
class SliceReader final : public CorpusReader {
 public:
  SliceReader(const CorpusReader& under, std::size_t begin, std::size_t end)
      : under_(&under), begin_(begin), end_(end) {}

  [[nodiscard]] std::size_t size() const override { return end_ - begin_; }
  [[nodiscard]] std::size_t doc_bytes(std::size_t i) const override {
    return under_->doc_bytes(begin_ + i);
  }
  [[nodiscard]] RawDocument read(std::size_t i) const override {
    RawDocument doc = under_->read(begin_ + i);
    doc.id = i;
    return doc;
  }

 private:
  const CorpusReader* under_;
  std::size_t begin_;
  std::size_t end_;
};

/// How to cut the corpus into ingestion shards.
struct ShardingConfig {
  /// Explicit shard count (0 = derive from the memory budget, or 1).
  std::size_t num_shards = 0;
  /// Upper bound on resident raw-document bytes per shard (0 = no bound).
  /// When both are set, the stricter (larger) shard count wins.
  std::size_t mem_budget_bytes = 0;
};

/// Contiguous, byte-balanced shard ranges covering the corpus in order.
/// Shards beyond the document count collapse to empty tail ranges.
std::vector<std::pair<std::size_t, std::size_t>> plan_shards(const CorpusReader& reader,
                                                             const ShardingConfig& config);

}  // namespace sva::corpus
