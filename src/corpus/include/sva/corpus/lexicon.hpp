// Deterministic synthetic lexicon: maps word ids to pronounceable,
// globally unique pseudo-words.  Word i is i written in base-|syllables|
// with syllables as digits, so distinctness is by construction and the
// mapping needs no storage.
#pragma once

#include <cstdint>
#include <string>

namespace sva::corpus {

class Lexicon {
 public:
  /// Pseudo-word for `word_id`; always at least two syllables.
  static std::string word(std::uint64_t word_id);

  /// Pseudo-name for authors ("Kamo RT" style); deterministic in id.
  static std::string author(std::uint64_t author_id);

  /// Number of distinct syllables (the radix of the encoding).
  static std::size_t num_syllables();
};

}  // namespace sva::corpus
