#include "sva/corpus/generator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sva/corpus/lexicon.hpp"
#include "sva/corpus/zipf.hpp"
#include "sva/util/error.hpp"
#include "sva/util/rng.hpp"

namespace sva::corpus {

namespace {

/// Shared sampling machinery: background Zipf over the core vocabulary and
/// per-theme Zipf over theme slices.
class VocabularyModel {
 public:
  explicit VocabularyModel(const CorpusSpec& spec)
      : spec_(spec),
        background_(spec.core_vocabulary, spec.zipf_exponent),
        theme_dist_(spec.theme_vocabulary, 0.8) {}

  /// Word id for one token of a document with latent theme `theme`.
  std::uint64_t sample_token(Xoshiro256& rng, std::size_t theme) const {
    if (rng.uniform() < spec_.theme_token_fraction) {
      const std::size_t rank = theme_dist_.sample(rng);
      return spec_.core_vocabulary + theme * spec_.theme_vocabulary + rank;
    }
    return background_.sample(rng);
  }

  /// Theme-specific word (for MeSH-style keyword fields).
  std::uint64_t sample_theme_word(Xoshiro256& rng, std::size_t theme) const {
    const std::size_t rank = theme_dist_.sample(rng);
    return spec_.core_vocabulary + theme * spec_.theme_vocabulary + rank;
  }

 private:
  const CorpusSpec& spec_;
  ZipfSampler background_;
  ZipfSampler theme_dist_;
};

std::size_t pick_theme(const CorpusSpec& spec, std::uint64_t doc_seq) {
  // Themes are mildly imbalanced (Zipf-ish over themes) so cluster sizes
  // differ, as in real corpora.  Deterministic in (seed, doc_seq).
  const std::uint64_t h = mix64(spec.seed ^ mix64(doc_seq * 2654435761ull));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  // Inverse-CDF of a truncated geometric-like distribution.
  const double p = 0.12;
  double acc = 0.0;
  double w = p;
  for (std::size_t t = 0; t + 1 < spec.num_themes; ++t) {
    acc += w;
    if (u < acc) return t;
    w *= (1.0 - p);
  }
  return spec.num_themes - 1;
}

void append_tokens(std::string& text, const VocabularyModel& vocab, Xoshiro256& rng,
                   std::size_t theme, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!text.empty()) text += ' ';
    text += Lexicon::word(vocab.sample_token(rng, theme));
  }
}

std::string noise_token(Xoshiro256& rng) {
  switch (rng.below(4)) {
    case 0: {  // bare number
      return std::to_string(rng.below(1000000));
    }
    case 1: {  // url fragment
      return "www." + Lexicon::word(rng.below(4000)) + ".gov";
    }
    case 2: {  // markup residue
      static const char* kResidue[] = {"href", "nbsp", "http", "html", "pdf", "img"};
      return kResidue[rng.below(6)];
    }
    default: {  // file-ish path
      return Lexicon::word(rng.below(4000)) + ".pdf";
    }
  }
}

RawDocument make_pubmed_doc(const CorpusSpec& spec, const VocabularyModel& vocab,
                            std::uint64_t doc_seq) {
  Xoshiro256 rng(spec.seed, doc_seq);
  const std::size_t theme = pick_theme(spec, doc_seq);

  RawDocument doc;
  doc.id = doc_seq;

  RawField pmid{"PMID", std::to_string(10000000 + doc_seq)};

  RawField title{"TI", {}};
  append_tokens(title.text, vocab, rng, theme, 6 + rng.below(9));

  // Abstracts are "consistent in both size and language type" (paper
  // §4.1): normal-ish length around 140 tokens.
  RawField abstract{"AB", {}};
  const std::size_t ab_len = 90 + rng.below(100);
  append_tokens(abstract.text, vocab, rng, theme, ab_len);

  RawField authors{"AU", {}};
  const std::size_t n_authors = 2 + rng.below(5);
  for (std::size_t a = 0; a < n_authors; ++a) {
    if (a) authors.text += "; ";
    authors.text += Lexicon::author(rng.below(200000));
  }

  RawField mesh{"MH", {}};
  const std::size_t n_mesh = 3 + rng.below(6);
  for (std::size_t m = 0; m < n_mesh; ++m) {
    if (m) mesh.text += ' ';
    mesh.text += Lexicon::word(vocab.sample_theme_word(rng, theme));
  }

  doc.fields = {std::move(pmid), std::move(title), std::move(abstract), std::move(authors),
                std::move(mesh)};
  return doc;
}

RawDocument make_trec_doc(const CorpusSpec& spec, const VocabularyModel& vocab,
                          std::uint64_t doc_seq) {
  Xoshiro256 rng(spec.seed, doc_seq ^ 0x7452ec9311ull);
  const std::size_t theme = pick_theme(spec, doc_seq);

  RawDocument doc;
  doc.id = doc_seq;

  RawField title{"title", {}};
  append_tokens(title.text, vocab, rng, theme, 3 + rng.below(10));

  // Body lengths: lognormal-ish heavy tail; a small fraction of giant
  // pages (concatenated PDFs, reports) creates the indexing skew.
  std::size_t body_len;
  if (rng.uniform() < spec.giant_doc_fraction) {
    body_len = 6000 + rng.below(14000);
  } else {
    const double z = (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0;
    body_len = static_cast<std::size_t>(std::clamp(std::exp(4.6 + 0.9 * z), 20.0, 5000.0));
  }

  RawField body{"body", {}};
  body.text.reserve(body_len * 7);
  for (std::size_t i = 0; i < body_len; ++i) {
    if (!body.text.empty()) body.text += ' ';
    if (rng.uniform() < spec.noise_token_fraction) {
      body.text += noise_token(rng);
    } else {
      body.text += Lexicon::word(vocab.sample_token(rng, theme));
    }
  }

  doc.fields = {std::move(title), std::move(body)};
  return doc;
}

}  // namespace

struct DocumentGenerator::Impl {
  CorpusSpec spec;
  VocabularyModel vocab;

  explicit Impl(CorpusSpec s) : spec(std::move(s)), vocab(spec) {
    require(spec.target_bytes > 0, "DocumentGenerator: target_bytes must be > 0");
    require(spec.num_themes >= 1, "DocumentGenerator: need at least one theme");
    require(spec.core_vocabulary >= 100, "DocumentGenerator: core vocabulary too small");
  }
};

DocumentGenerator::DocumentGenerator(CorpusSpec spec)
    : impl_(std::make_unique<Impl>(std::move(spec))) {}
DocumentGenerator::~DocumentGenerator() = default;
DocumentGenerator::DocumentGenerator(DocumentGenerator&&) noexcept = default;
DocumentGenerator& DocumentGenerator::operator=(DocumentGenerator&&) noexcept = default;

const CorpusSpec& DocumentGenerator::spec() const { return impl_->spec; }

RawDocument DocumentGenerator::make(std::uint64_t doc_seq) const {
  return impl_->spec.kind == CorpusKind::kPubMedLike
             ? make_pubmed_doc(impl_->spec, impl_->vocab, doc_seq)
             : make_trec_doc(impl_->spec, impl_->vocab, doc_seq);
}

SourceSet generate_corpus(const CorpusSpec& spec) {
  const DocumentGenerator gen(spec);
  SourceSet sources;
  std::uint64_t doc_seq = 0;
  while (sources.total_bytes() < spec.target_bytes) {
    sources.add(gen.make(doc_seq));
    ++doc_seq;
  }
  return sources;
}

std::size_t ground_truth_theme(const CorpusSpec& spec, std::uint64_t doc_seq) {
  return pick_theme(spec, doc_seq);
}

std::string corpus_kind_name(CorpusKind kind) {
  return kind == CorpusKind::kPubMedLike ? "pubmed-like" : "trec-like";
}

CorpusSpec pubmed_like_spec(int size_index, std::size_t s1_bytes) {
  require(size_index >= 0 && size_index <= 2, "pubmed_like_spec: size_index in {0,1,2}");
  // Paper sizes 2.75 / 6.67 / 16.44 GB -> ratios 1 : 2.425 : 5.978.
  static constexpr double kRatios[] = {1.0, 2.425, 5.978};
  CorpusSpec spec;
  spec.kind = CorpusKind::kPubMedLike;
  spec.seed = 20070326;
  spec.target_bytes = static_cast<std::size_t>(static_cast<double>(s1_bytes) *
                                               kRatios[size_index]);
  spec.core_vocabulary = 24000;
  spec.num_themes = 24;
  spec.theme_vocabulary = 400;
  spec.zipf_exponent = 1.05;
  return spec;
}

CorpusSpec trec_like_spec(int size_index, std::size_t s1_bytes) {
  require(size_index >= 0 && size_index <= 2, "trec_like_spec: size_index in {0,1,2}");
  // Paper sizes 1 / 4 / 8.21 GB.
  static constexpr double kRatios[] = {1.0, 4.0, 8.21};
  CorpusSpec spec;
  spec.kind = CorpusKind::kTrecLike;
  spec.seed = 20040115;
  spec.target_bytes = static_cast<std::size_t>(static_cast<double>(s1_bytes) *
                                               kRatios[size_index]);
  spec.core_vocabulary = 60000;
  spec.num_themes = 32;
  spec.theme_vocabulary = 500;
  spec.zipf_exponent = 1.0;
  spec.noise_token_fraction = 0.08;
  spec.giant_doc_fraction = 0.004;
  return spec;
}

}  // namespace sva::corpus
