#include "sva/corpus/lexicon.hpp"

#include <array>

#include "sva/util/rng.hpp"

namespace sva::corpus {

namespace {

constexpr std::array<const char*, 48> kSyllables = {
    "ka", "mo", "ri", "ta", "lu", "ne", "so", "vi", "da", "pe", "go", "shu",
    "ba", "ke", "mi", "to", "ra", "le", "nu", "si", "va", "de", "po", "ga",
    "hu", "be", "ko", "ma", "ti", "ro", "la", "ze", "ni", "su", "wa", "fe",
    "du", "pa", "gi", "ho", "bu", "che", "mu", "te", "ru", "li", "no", "sa"};

}  // namespace

std::size_t Lexicon::num_syllables() { return kSyllables.size(); }

std::string Lexicon::word(std::uint64_t word_id) {
  // Base-48 digits of (word_id + 48), least significant first.  The offset
  // guarantees at least two syllables (so words look natural and never
  // collide with single-syllable stopwords) while keeping the mapping
  // injective: distinct shifted values have distinct digit strings, and no
  // padding scheme can collide with a genuine two-digit encoding.
  std::string out;
  out.reserve(12);
  std::uint64_t v = word_id + kSyllables.size();
  while (v != 0) {
    out += kSyllables[v % kSyllables.size()];
    v /= kSyllables.size();
  }
  return out;
}

std::string Lexicon::author(std::uint64_t author_id) {
  std::string name = word(author_id % 9973);
  name[0] = static_cast<char>(name[0] - 'a' + 'A');
  const char initial1 = static_cast<char>('A' + mix64(author_id) % 26);
  const char initial2 = static_cast<char>('A' + mix64(author_id ^ 0x5aa5) % 26);
  name += ' ';
  name += initial1;
  name += initial2;
  return name;
}

}  // namespace sva::corpus
