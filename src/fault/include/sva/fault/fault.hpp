// Deterministic, seedable fault injection.
//
// Production code marks its load-bearing edges with named fault points:
//
//   sva::fault::point(sva::fault::sites::kSectionFileRead);
//
// A disabled point costs one relaxed atomic load.  Tests — or an operator,
// via the SVA_FAULT environment variable or a tool's --fault flag — arm
// points with rules so that failure behavior can be *proven* rather than
// hoped for.  All triggers are driven by per-rule traversal counters and a
// seeded hash, never by wall-clock or a global RNG, so a given spec fires
// at exactly the same traversals on every run.
//
// Spec grammar (one or more rules joined by ';'):
//
//   <site>:<action>[:opt=val[,opt=val...]]
//
//   actions   error    throw sva::Error
//             format   throw sva::FormatError
//             short    ask the caller to truncate its read (only sites
//                      that inspect the returned Hint honor it)
//             kill     raise SIGKILL on the calling process
//             delay    sleep for ms=<N> milliseconds, then continue
//
//   options   hit=N    fire on the Nth matching traversal (1-based)
//             every=N  fire on every Nth matching traversal
//             prob=P   fire with probability P per traversal, decided by
//                      hash(seed, site, traversal) — deterministic
//             seed=S   seed for prob (default 1)
//             count=C  stop after C firings (default 1 for hit,
//                      unlimited otherwise)
//             rank=R   only traversals on SPMD rank R match (ranks are
//                      published by the GA runtime via set_thread_rank)
//             ms=N     sleep duration for the delay action (default 100)
//
// Examples:
//
//   SVA_FAULT="engine.section_file.read:format:hit=1"
//   SVA_FAULT="serve.sweep:kill:rank=1,hit=1"
//   SVA_FAULT="ga.shm.sync:delay:prob=0.01,seed=7,ms=20,count=3"
//
// At most one of hit/every/prob per rule; a rule with none of them fires
// on every matching traversal.  When several rules arm one site, the
// first rule that decides to fire on a traversal acts; the rest are
// skipped for that traversal.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sva::fault {

/// Compiled-in registry of fault-point names.  Call sites use these
/// constants (never ad-hoc strings) so the registry below is the complete,
/// greppable list of injectable edges.
namespace sites {
/// SectionedFile payload read (bundle/checkpoint open; honors `short`).
inline constexpr char kSectionFileRead[] = "engine.section_file.read";
/// SectionedFile atomic write (bundle/checkpoint publish).
inline constexpr char kSectionFileWrite[] = "engine.section_file.write";
/// Shm transport: a rank publishing its staged payload.
inline constexpr char kShmPublish[] = "ga.shm.publish";
/// Shm transport: a rank waiting for peer arrival (every collective).
inline constexpr char kShmSync[] = "ga.shm.sync";
/// Shm transport: one pass of the parent's child-reaper loop.
inline constexpr char kShmReap[] = "ga.shm.reap";
/// Socket transport: rendezvous/mesh connection setup (per rank).
inline constexpr char kSocketConnect[] = "ga.socket.connect";
/// Socket transport: a rank framing its round payload for the wire.
inline constexpr char kSocketSend[] = "ga.socket.send";
/// Socket transport: frame-header validation on the receive path.
inline constexpr char kSocketRecv[] = "ga.socket.recv";
/// Socket transport: one heartbeat tick of the I/O thread.
inline constexpr char kSocketHeartbeat[] = "ga.socket.heartbeat";
/// Session::open (collective bundle load into a world).
inline constexpr char kSessionOpen[] = "query.session.open";
/// Serve admission: a validated query entering the scheduler queue.
inline constexpr char kServeAdmission[] = "serve.admission";
/// Serve sweep: every rank, immediately before executing a batch.
inline constexpr char kServeSweep[] = "serve.sweep";
/// Socket ingress: one request line about to be processed.
inline constexpr char kServeSocketLine[] = "serve.ingress.socket";
/// File-queue ingress: one claimed request file about to be processed.
inline constexpr char kServeSpoolFile[] = "serve.ingress.spool";
}  // namespace sites

/// What an armed point asks of its caller when it neither throws, kills,
/// nor delays.  Only sites documented as honoring kShortRead inspect it.
enum class Hint {
  kNone,
  kShortRead,
};

/// Traverse the fault point `site`.  When a matching rule fires this may
/// throw (sva::Error / sva::FormatError), sleep, or SIGKILL the calling
/// process; the `short` action is returned as Hint::kShortRead instead.
/// The very first traversal in a process reads SVA_FAULT from the
/// environment; after that a disabled substrate is a single atomic load.
Hint point(const char* site);

/// Replace the active configuration with `spec` (see grammar above) and
/// reset all traversal/fire counters.  An empty spec disarms every point.
/// Throws InvalidArgument on a malformed spec.
void configure(std::string_view spec);

/// configure() from the SVA_FAULT environment variable (disarms when the
/// variable is unset or empty).
void configure_from_env();

/// Disarm all points and forget all counters.
void reset();

/// True when at least one rule is armed.
bool armed();

/// Traversals of `site` observed while armed.
std::uint64_t hits(std::string_view site);

/// Rule firings at `site` (includes short/delay firings).
std::uint64_t fired(std::string_view site);

/// Sites traversed at least once while armed, sorted.
std::vector<std::string> sites_seen();

/// Publish the calling thread's SPMD rank for `rank=` rule filters.  The
/// GA runtime calls this as each rank's body starts; -1 (the initial
/// value) means "no rank", which only rank-unfiltered rules match.
void set_thread_rank(int rank);

/// The calling thread's published SPMD rank, or -1.
int thread_rank();

}  // namespace sva::fault
