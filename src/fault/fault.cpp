#include "sva/fault/fault.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "sva/util/error.hpp"
#include "sva/util/parse.hpp"

namespace sva::fault {
namespace {

enum class Action { kError, kFormat, kShort, kKill, kDelay };

struct Rule {
  Action action = Action::kError;
  // Trigger (at most one of hit/every/prob is set).
  std::uint64_t hit = 0;    // fire on the Nth matching traversal
  std::uint64_t every = 0;  // fire on every Nth matching traversal
  double prob = -1.0;       // fire with this probability per traversal
  std::uint64_t seed = 1;
  std::uint64_t count = 0;  // max firings; 0 = unlimited
  int rank = -1;            // -1: any thread matches
  std::uint64_t delay_ms = 100;
  // Counters.
  std::uint64_t seen = 0;   // matching traversals
  std::uint64_t fired = 0;  // firings
};

struct Site {
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  std::vector<Rule> rules;
};

// kUninit -> first point() traversal reads SVA_FAULT exactly once; after
// that every disabled traversal is the single relaxed load below.
enum Mode : int { kUninit = -1, kDisarmed = 0, kArmed = 1 };

std::atomic<int> g_mode{kUninit};
std::mutex g_mutex;
// Transparent comparator: point() looks up by const char* without
// allocating.  Guarded by g_mutex.
std::map<std::string, Site, std::less<>>& state() {
  static std::map<std::string, Site, std::less<>> s;
  return s;
}

thread_local int t_rank = -1;

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0, 1) for traversal `n` of `site`.
double draw(std::uint64_t seed, std::string_view site, std::uint64_t n) {
  const std::uint64_t bits = splitmix64(seed ^ fnv1a(site) ^ (n * 0xD1B54A32D192ED03ull));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

[[noreturn]] void bad_spec(const std::string& detail) {
  throw InvalidArgument("SVA_FAULT: " + detail);
}

std::uint64_t parse_count(std::string_view text, const std::string& what) {
  const std::optional<std::uint64_t> value = parse_u64(text);
  if (!value) bad_spec(what + "= must be an unsigned integer, got '" + std::string(text) + "'");
  return *value;
}

Rule parse_rule_options(std::string_view opts, Rule rule) {
  std::size_t start = 0;
  int triggers = 0;
  while (start <= opts.size()) {
    const std::size_t end = std::min(opts.find(',', start), opts.size());
    const std::string_view opt = opts.substr(start, end - start);
    start = end + 1;
    if (opt.empty()) continue;
    const std::size_t eq = opt.find('=');
    if (eq == std::string_view::npos) bad_spec("option '" + std::string(opt) + "' is not key=value");
    const std::string_view key = opt.substr(0, eq);
    const std::string_view val = opt.substr(eq + 1);
    if (key == "hit") {
      rule.hit = parse_count(val, "hit");
      if (rule.hit == 0) bad_spec("hit= must be >= 1");
      ++triggers;
    } else if (key == "every") {
      rule.every = parse_count(val, "every");
      if (rule.every == 0) bad_spec("every= must be >= 1");
      ++triggers;
    } else if (key == "prob") {
      char* end_ptr = nullptr;
      const std::string text(val);
      rule.prob = std::strtod(text.c_str(), &end_ptr);
      if (end_ptr != text.c_str() + text.size() || rule.prob < 0.0 || rule.prob > 1.0) {
        bad_spec("prob= must be a number in [0, 1], got '" + text + "'");
      }
      ++triggers;
    } else if (key == "seed") {
      rule.seed = parse_count(val, "seed");
    } else if (key == "count") {
      rule.count = parse_count(val, "count");
    } else if (key == "rank") {
      rule.rank = static_cast<int>(parse_count(val, "rank"));
    } else if (key == "ms") {
      rule.delay_ms = parse_count(val, "ms");
    } else {
      bad_spec("unknown option '" + std::string(key) + "'");
    }
  }
  if (triggers > 1) bad_spec("at most one of hit=/every=/prob= per rule");
  // A one-shot hit trigger fires once unless the spec says otherwise.
  if (rule.hit != 0 && rule.count == 0) rule.count = 1;
  return rule;
}

/// Parses `spec` into site -> rules, throwing InvalidArgument on errors.
std::map<std::string, Site, std::less<>> parse_spec(std::string_view spec) {
  std::map<std::string, Site, std::less<>> parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', start), spec.size());
    const std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t first = entry.find(':');
    if (first == std::string_view::npos) bad_spec("rule '" + std::string(entry) + "' has no action (want site:action[:opts])");
    const std::string_view site = entry.substr(0, first);
    if (site.empty()) bad_spec("rule '" + std::string(entry) + "' has an empty site name");
    const std::size_t second = entry.find(':', first + 1);
    const std::string_view action = entry.substr(first + 1, std::min(second, entry.size()) - first - 1);
    const std::string_view opts = second == std::string_view::npos ? std::string_view{} : entry.substr(second + 1);
    Rule rule;
    if (action == "error") {
      rule.action = Action::kError;
    } else if (action == "format") {
      rule.action = Action::kFormat;
    } else if (action == "short") {
      rule.action = Action::kShort;
    } else if (action == "kill") {
      rule.action = Action::kKill;
    } else if (action == "delay") {
      rule.action = Action::kDelay;
    } else {
      bad_spec("unknown action '" + std::string(action) + "' (want error|format|short|kill|delay)");
    }
    parsed[std::string(site)].rules.push_back(parse_rule_options(opts, rule));
  }
  return parsed;
}

void install(std::map<std::string, Site, std::less<>> parsed) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const bool any = !parsed.empty();
  state() = std::move(parsed);
  g_mode.store(any ? kArmed : kDisarmed, std::memory_order_relaxed);
}

void init_from_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    // configure()/reset() may have run before the first point() traversal;
    // never clobber an explicit configuration with the environment.
    if (g_mode.load(std::memory_order_relaxed) == kUninit) configure_from_env();
  });
}

Hint point_slow(const char* site) {
  Action action = Action::kError;
  std::uint64_t delay_ms = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_mode.load(std::memory_order_relaxed) != kArmed) return Hint::kNone;
    auto it = state().find(std::string_view(site));
    if (it == state().end()) {
      // Record the traversal so sites_seen()/hits() cover unarmed sites
      // too, which is how tests assert a point is actually on a path.
      it = state().emplace(site, Site{}).first;
    }
    Site& entry = it->second;
    ++entry.hits;
    for (Rule& rule : entry.rules) {
      if (rule.rank >= 0 && rule.rank != t_rank) continue;
      const std::uint64_t n = ++rule.seen;
      if (rule.count != 0 && rule.fired >= rule.count) continue;
      bool decided = false;
      if (rule.hit != 0) {
        decided = n == rule.hit;
      } else if (rule.every != 0) {
        decided = n % rule.every == 0;
      } else if (rule.prob >= 0.0) {
        decided = draw(rule.seed, site, n) < rule.prob;
      } else {
        decided = true;
      }
      if (!decided) continue;
      ++rule.fired;
      ++entry.fired;
      action = rule.action;
      delay_ms = rule.delay_ms;
      fire = true;
      break;
    }
  }
  if (!fire) return Hint::kNone;
  switch (action) {
    case Action::kError:
      throw Error(std::string("fault injected at '") + site + "'");
    case Action::kFormat:
      throw FormatError(std::string("fault injected at '") + site + "'");
    case Action::kShort:
      return Hint::kShortRead;
    case Action::kKill:
      std::raise(SIGKILL);
      break;  // unreachable; keeps non-POSIX builds honest
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      break;
  }
  return Hint::kNone;
}

}  // namespace

Hint point(const char* site) {
  const int mode = g_mode.load(std::memory_order_relaxed);
  if (mode == kDisarmed) return Hint::kNone;
  if (mode == kUninit) {
    init_from_env_once();
    if (g_mode.load(std::memory_order_relaxed) == kDisarmed) return Hint::kNone;
  }
  return point_slow(site);
}

void configure(std::string_view spec) { install(parse_spec(spec)); }

void configure_from_env() {
  const char* spec = std::getenv("SVA_FAULT");
  install(spec == nullptr ? std::map<std::string, Site, std::less<>>{} : parse_spec(spec));
}

void reset() { install({}); }

bool armed() { return g_mode.load(std::memory_order_relaxed) == kArmed; }

std::uint64_t hits(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = state().find(site);
  return it == state().end() ? 0 : it->second.hits;
}

std::uint64_t fired(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = state().find(site);
  return it == state().end() ? 0 : it->second.fired;
}

std::vector<std::string> sites_seen() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<std::string> names;
  for (const auto& [name, site] : state()) {
    if (site.hits > 0) names.push_back(name);
  }
  return names;
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

}  // namespace sva::fault
