#include "sva/viz/render.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "sva/util/error.hpp"

namespace sva::viz {

namespace {

std::ofstream open_output(const std::string& path) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "viz: cannot open " + path);
  return out;
}

struct Rgb {
  int r, g, b;
};

/// Classic hypsometric ramp: deep water through lowland green, highland
/// brown, to snow.
Rgb terrain_color(double t) {
  static constexpr std::array<Rgb, 6> kStops = {{{24, 48, 96},     // deep
                                                 {38, 98, 140},    // shallow
                                                 {70, 140, 66},    // lowland
                                                 {160, 150, 70},   // upland
                                                 {140, 100, 60},   // mountain
                                                 {245, 245, 245}}};  // snow
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * static_cast<double>(kStops.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, kStops.size() - 1);
  const double f = pos - static_cast<double>(lo);
  auto mix = [f](int a, int b) {
    return static_cast<int>(std::lround(static_cast<double>(a) +
                                        f * static_cast<double>(b - a)));
  };
  return {mix(kStops[lo].r, kStops[hi].r), mix(kStops[lo].g, kStops[hi].g),
          mix(kStops[lo].b, kStops[hi].b)};
}

}  // namespace

void write_pgm(const cluster::ThemeViewTerrain& terrain, const std::string& path,
               std::size_t scale) {
  require(scale >= 1, "write_pgm: scale must be >= 1");
  auto out = open_output(path);
  const std::size_t g = terrain.grid();
  const std::size_t px = g * scale;
  const double peak = terrain.peak();
  out << "P2\n" << px << ' ' << px << "\n255\n";
  for (std::size_t y = 0; y < px; ++y) {
    for (std::size_t x = 0; x < px; ++x) {
      const double v = peak > 0.0 ? terrain.at(y / scale, x / scale) / peak : 0.0;
      out << static_cast<int>(std::lround(v * 255.0));
      out << (x + 1 == px ? '\n' : ' ');
    }
  }
}

void write_ppm(const cluster::ThemeViewTerrain& terrain, const std::string& path,
               std::size_t scale) {
  require(scale >= 1, "write_ppm: scale must be >= 1");
  auto out = open_output(path);
  const std::size_t g = terrain.grid();
  const std::size_t px = g * scale;
  const double peak = terrain.peak();
  out << "P3\n" << px << ' ' << px << "\n255\n";
  for (std::size_t y = 0; y < px; ++y) {
    for (std::size_t x = 0; x < px; ++x) {
      const double v = peak > 0.0 ? terrain.at(y / scale, x / scale) / peak : 0.0;
      const Rgb c = terrain_color(v);
      out << c.r << ' ' << c.g << ' ' << c.b;
      out << (x + 1 == px ? '\n' : ' ');
    }
  }
}

void write_svg(const cluster::ThemeViewTerrain& terrain, const std::vector<Contour>& contours,
               const std::vector<Peak>& peaks, const std::vector<double>& points_xy,
               const std::string& path, const SvgConfig& config) {
  require(points_xy.size() % 2 == 0, "write_svg: points_xy must be interleaved pairs");
  auto out = open_output(path);
  const auto size = static_cast<double>(config.size_px);
  const auto g = static_cast<double>(terrain.grid() - 1);
  const double cell = size / (g + 1.0);

  auto grid_to_px = [&](double col, double row) {
    return std::pair<double, double>{(col + 0.5) * cell, (row + 0.5) * cell};
  };
  auto world_to_px = [&](double x, double y) {
    const auto [col, row] = terrain.to_grid(x, y);
    return grid_to_px(col, row);
  };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << config.size_px
      << "\" height=\"" << config.size_px << "\" viewBox=\"0 0 " << config.size_px << ' '
      << config.size_px << "\">\n";
  {
    const Rgb bg = terrain_color(0.0);
    out << "  <rect width=\"100%\" height=\"100%\" fill=\"rgb(" << bg.r << ',' << bg.g << ','
        << bg.b << ")\"/>\n";
  }

  // Contour bands, lowest level first so higher bands draw on top.
  const double peak_h = terrain.peak();
  for (const Contour& contour : contours) {
    if (contour.points.size() < 2) continue;
    // Sample the level from the first vertex for the band color.
    const auto [c0, r0] = contour.points.front();
    const double level =
        terrain.at(std::min<std::size_t>(static_cast<std::size_t>(std::lround(r0)),
                                         terrain.grid() - 1),
                   std::min<std::size_t>(static_cast<std::size_t>(std::lround(c0)),
                                         terrain.grid() - 1));
    const Rgb stroke = terrain_color(peak_h > 0.0 ? level / peak_h : 0.0);
    out << "  <polyline fill=\"none\" stroke=\"rgb(" << stroke.r << ',' << stroke.g << ','
        << stroke.b << ")\" stroke-width=\"1.2\" points=\"";
    for (const auto& [col, row] : contour.points) {
      const auto [x, y] = grid_to_px(col, row);
      out << x << ',' << y << ' ';
    }
    out << "\"/>\n";
  }

  if (config.draw_points && !points_xy.empty()) {
    const std::size_t n = points_xy.size() / 2;
    const std::size_t stride =
        config.max_points != 0 ? std::max<std::size_t>(1, n / config.max_points) : 1;
    out << "  <g fill=\"rgba(255,255,255,0.55)\">\n";
    for (std::size_t i = 0; i < n; i += stride) {
      const auto [x, y] = world_to_px(points_xy[2 * i], points_xy[2 * i + 1]);
      if (x < 0.0 || y < 0.0 || x > size || y > size) continue;
      out << "    <circle cx=\"" << x << "\" cy=\"" << y << "\" r=\"1.1\"/>\n";
    }
    out << "  </g>\n";
  }

  for (const Peak& p : peaks) {
    const auto [x, y] = grid_to_px(static_cast<double>(p.col), static_cast<double>(p.row));
    out << "  <circle cx=\"" << x << "\" cy=\"" << y
        << "\" r=\"3.5\" fill=\"#ffffff\" stroke=\"#202020\"/>\n";
    if (config.draw_labels && !p.label.empty()) {
      out << "  <text x=\"" << x + 6.0 << "\" y=\"" << y - 6.0
          << "\" font-family=\"sans-serif\" font-size=\"12\" fill=\"#101010\" "
             "stroke=\"#ffffff\" stroke-width=\"0.4\">"
          << p.label << "</text>\n";
    }
  }
  out << "</svg>\n";
}

std::string ascii_with_peaks(const cluster::ThemeViewTerrain& terrain,
                             const std::vector<Peak>& peaks) {
  std::string ascii = terrain.to_ascii();
  const std::size_t g = terrain.grid();
  // Rows in to_ascii are g characters + newline.
  for (std::size_t i = 0; i < peaks.size(); ++i) {
    const Peak& p = peaks[i];
    const std::size_t pos = p.row * (g + 1) + p.col;
    if (pos < ascii.size()) {
      ascii[pos] = i < 9 ? static_cast<char>('1' + i) : '^';
    }
  }
  std::string legend;
  for (std::size_t i = 0; i < peaks.size() && i < 9; ++i) {
    legend += '\n';
    legend += static_cast<char>('1' + i);
    legend += ": ";
    legend += peaks[i].label.empty() ? "(unlabeled)" : peaks[i].label;
  }
  return ascii + legend + (legend.empty() ? "" : "\n");
}

}  // namespace sva::viz
