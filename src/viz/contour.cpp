#include "sva/viz/contour.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>

#include "sva/util/error.hpp"

namespace sva::viz {

namespace {

using Point = std::pair<double, double>;  // (col, row)

/// Interpolates the level crossing between two corner values.
double crossing(double a, double b, double level) {
  const double d = b - a;
  if (std::abs(d) < 1e-300) return 0.5;
  return std::clamp((level - a) / d, 0.0, 1.0);
}

/// Quantized endpoint key so segment ends can be matched exactly even
/// after floating-point interpolation.
std::pair<std::int64_t, std::int64_t> key_of(const Point& p) {
  constexpr double kScale = 1 << 20;
  return {static_cast<std::int64_t>(std::llround(p.first * kScale)),
          static_cast<std::int64_t>(std::llround(p.second * kScale))};
}

struct Segment {
  Point a;
  Point b;
  bool used = false;
};

}  // namespace

std::vector<Contour> extract_contours(const cluster::ThemeViewTerrain& terrain, double level) {
  const std::size_t g = terrain.grid();
  std::vector<Segment> segments;
  if (g < 2) return {};

  for (std::size_t r = 0; r + 1 < g; ++r) {
    for (std::size_t c = 0; c + 1 < g; ++c) {
      const double v00 = terrain.at(r, c);        // top-left
      const double v01 = terrain.at(r, c + 1);    // top-right
      const double v11 = terrain.at(r + 1, c + 1);  // bottom-right
      const double v10 = terrain.at(r + 1, c);    // bottom-left

      int idx = 0;
      if (v00 >= level) idx |= 1;
      if (v01 >= level) idx |= 2;
      if (v11 >= level) idx |= 4;
      if (v10 >= level) idx |= 8;
      if (idx == 0 || idx == 15) continue;

      const auto col = static_cast<double>(c);
      const auto row = static_cast<double>(r);
      // Edge midpoints with interpolation; edges numbered top(0),
      // right(1), bottom(2), left(3).
      const Point top{col + crossing(v00, v01, level), row};
      const Point right{col + 1.0, row + crossing(v01, v11, level)};
      const Point bottom{col + crossing(v10, v11, level), row + 1.0};
      const Point left{col, row + crossing(v00, v10, level)};

      auto emit = [&](const Point& a, const Point& b) { segments.push_back({a, b, false}); };

      switch (idx) {
        case 1:  emit(left, top); break;
        case 2:  emit(top, right); break;
        case 3:  emit(left, right); break;
        case 4:  emit(right, bottom); break;
        case 5: {
          // Saddle: disambiguate with the cell-center average.
          const double center = 0.25 * (v00 + v01 + v10 + v11);
          if (center >= level) {
            emit(left, bottom);
            emit(top, right);
          } else {
            emit(left, top);
            emit(right, bottom);
          }
          break;
        }
        case 6:  emit(top, bottom); break;
        case 7:  emit(left, bottom); break;
        case 8:  emit(bottom, left); break;
        case 9:  emit(bottom, top); break;
        case 10: {
          const double center = 0.25 * (v00 + v01 + v10 + v11);
          if (center >= level) {
            emit(top, left);
            emit(bottom, right);
          } else {
            emit(top, right);
            emit(bottom, left);
          }
          break;
        }
        case 11: emit(bottom, right); break;
        case 12: emit(right, left); break;
        case 13: emit(right, top); break;
        case 14: emit(top, left); break;
        default: break;
      }
    }
  }

  // Chain segments into polylines: walk from each unused segment in both
  // directions, matching quantized endpoints.
  std::multimap<std::pair<std::int64_t, std::int64_t>, std::size_t> by_end;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    by_end.emplace(key_of(segments[i].a), i);
    by_end.emplace(key_of(segments[i].b), i);
  }

  auto take_next = [&](const Point& tip, std::size_t& out_idx) {
    auto [lo, hi] = by_end.equal_range(key_of(tip));
    for (auto it = lo; it != hi; ++it) {
      if (!segments[it->second].used) {
        out_idx = it->second;
        return true;
      }
    }
    return false;
  };

  std::vector<Contour> contours;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].used) continue;
    segments[i].used = true;
    Contour contour;
    contour.points.push_back(segments[i].a);
    contour.points.push_back(segments[i].b);

    // Extend forward from the tail, then backward from the head.
    for (int pass = 0; pass < 2; ++pass) {
      while (true) {
        const Point tip = pass == 0 ? contour.points.back() : contour.points.front();
        std::size_t next = 0;
        if (!take_next(tip, next)) break;
        segments[next].used = true;
        const Point tip_key = tip;
        const Point other = key_of(segments[next].a) == key_of(tip_key) ? segments[next].b
                                                                        : segments[next].a;
        if (pass == 0) {
          contour.points.push_back(other);
        } else {
          contour.points.insert(contour.points.begin(), other);
        }
      }
    }
    contour.closed = contour.points.size() > 2 &&
                     key_of(contour.points.front()) == key_of(contour.points.back());
    contours.push_back(std::move(contour));
  }
  return contours;
}

std::vector<double> contour_levels(const cluster::ThemeViewTerrain& terrain,
                                   std::size_t bands, double fraction_lo,
                                   double fraction_hi) {
  require(bands >= 1, "contour_levels: need at least one band");
  require(fraction_lo > 0.0 && fraction_lo < fraction_hi && fraction_hi < 1.0,
          "contour_levels: need 0 < lo < hi < 1");
  std::vector<double> levels;
  levels.reserve(bands);
  const double peak = terrain.peak();
  if (bands == 1) {
    levels.push_back(peak * 0.5 * (fraction_lo + fraction_hi));
    return levels;
  }
  for (std::size_t b = 0; b < bands; ++b) {
    const double f = fraction_lo + (fraction_hi - fraction_lo) * static_cast<double>(b) /
                                       static_cast<double>(bands - 1);
    levels.push_back(peak * f);
  }
  return levels;
}

}  // namespace sva::viz
