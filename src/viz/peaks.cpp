#include "sva/viz/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sva/util/error.hpp"

namespace sva::viz {

std::vector<Peak> find_peaks(const cluster::ThemeViewTerrain& terrain,
                             const PeakConfig& config) {
  require(config.min_height_fraction >= 0.0 && config.min_height_fraction <= 1.0,
          "find_peaks: min_height_fraction in [0, 1]");
  const std::size_t g = terrain.grid();
  const double floor = terrain.peak() * config.min_height_fraction;
  if (g == 0 || terrain.peak() <= 0.0) return {};

  // Candidate maxima: strictly higher than every 8-neighbour (ties broken
  // toward the lexicographically first cell so plateaus yield one peak).
  std::vector<Peak> candidates;
  for (std::size_t row = 0; row < g; ++row) {
    for (std::size_t col = 0; col < g; ++col) {
      const double h = terrain.at(row, col);
      if (h < floor) continue;
      bool is_max = true;
      for (int dr = -1; dr <= 1 && is_max; ++dr) {
        for (int dc = -1; dc <= 1 && is_max; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const auto r2 = static_cast<std::ptrdiff_t>(row) + dr;
          const auto c2 = static_cast<std::ptrdiff_t>(col) + dc;
          if (r2 < 0 || c2 < 0 || r2 >= static_cast<std::ptrdiff_t>(g) ||
              c2 >= static_cast<std::ptrdiff_t>(g)) {
            continue;
          }
          const double other =
              terrain.at(static_cast<std::size_t>(r2), static_cast<std::size_t>(c2));
          if (other > h) is_max = false;
          // Plateau tie: only the first cell in scan order survives.
          if (other == h && (r2 < static_cast<std::ptrdiff_t>(row) ||
                             (r2 == static_cast<std::ptrdiff_t>(row) &&
                              c2 < static_cast<std::ptrdiff_t>(col)))) {
            is_max = false;
          }
        }
      }
      if (!is_max) continue;
      Peak p;
      p.row = row;
      p.col = col;
      p.height = h;
      const auto [wx, wy] =
          terrain.to_world(static_cast<double>(col), static_cast<double>(row));
      p.x = wx;
      p.y = wy;
      candidates.push_back(p);
    }
  }

  // Highest first; deterministic tie-break by grid position.
  std::sort(candidates.begin(), candidates.end(), [](const Peak& a, const Peak& b) {
    if (a.height != b.height) return a.height > b.height;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });

  // Non-maximum suppression: a candidate within min_separation (Chebyshev)
  // of an accepted, higher peak is part of the same mountain.
  std::vector<Peak> peaks;
  for (const Peak& c : candidates) {
    const bool suppressed = std::any_of(peaks.begin(), peaks.end(), [&](const Peak& p) {
      const auto dr = static_cast<std::ptrdiff_t>(p.row) - static_cast<std::ptrdiff_t>(c.row);
      const auto dc = static_cast<std::ptrdiff_t>(p.col) - static_cast<std::ptrdiff_t>(c.col);
      return static_cast<std::size_t>(std::max(std::abs(dr), std::abs(dc))) <=
             config.min_separation;
    });
    if (suppressed) continue;
    peaks.push_back(c);
    if (config.max_peaks != 0 && peaks.size() == config.max_peaks) break;
  }
  return peaks;
}

void label_peaks(std::vector<Peak>& peaks, const std::vector<double>& centroids_xy,
                 const std::vector<std::vector<std::string>>& theme_labels,
                 std::size_t label_terms) {
  require(centroids_xy.size() % 2 == 0, "label_peaks: centroids_xy must be interleaved pairs");
  const std::size_t k = centroids_xy.size() / 2;
  if (k == 0) return;
  for (Peak& p : peaks) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double dx = centroids_xy[2 * c] - p.x;
      const double dy = centroids_xy[2 * c + 1] - p.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    p.cluster = static_cast<int>(best_c);
    p.label.clear();
    if (best_c < theme_labels.size()) {
      const auto& terms = theme_labels[best_c];
      const std::size_t n = std::min(label_terms, terms.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (i != 0) p.label += '/';
        p.label += terms[i];
      }
    }
  }
}

}  // namespace sva::viz
