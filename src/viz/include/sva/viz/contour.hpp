// Iso-contour extraction (marching squares) over a ThemeView terrain.
//
// Contour bands are how a density landscape reads as *terrain*: nested
// rings around each theme mountain.  extract_contours traces the iso-line
// of one density level through every grid cell it crosses, chaining the
// segments into polylines (closed where the iso-line never touches the
// grid boundary).  Coordinates are fractional (col, row) grid positions,
// convertible to world space with ThemeViewTerrain::to_world.
#pragma once

#include <cstddef>
#include <vector>

#include "sva/cluster/projection.hpp"

namespace sva::viz {

/// One traced iso-line: a sequence of (col, row) grid-space vertices.
struct Contour {
  std::vector<std::pair<double, double>> points;
  bool closed = false;

  [[nodiscard]] std::size_t size() const { return points.size(); }
};

/// Traces all iso-lines of `level` (absolute density).  Levels at or
/// outside the terrain's range return no contours.
[[nodiscard]] std::vector<Contour> extract_contours(const cluster::ThemeViewTerrain& terrain,
                                                    double level);

/// Evenly spaced levels between `fraction_lo` and `fraction_hi` of the
/// peak density — the usual banding for a terrain rendering.
[[nodiscard]] std::vector<double> contour_levels(const cluster::ThemeViewTerrain& terrain,
                                                 std::size_t bands, double fraction_lo = 0.15,
                                                 double fraction_hi = 0.85);

}  // namespace sva::viz
