// Rasterized and vector renderings of the ThemeView terrain.
//
// The paper's Figure 2 shows the terrain as a shaded landscape with
// theme labels at the mountains.  This module writes:
//   * PGM — plain grayscale heightmap (universally readable, zero deps);
//   * PPM — the classic terrain color ramp (sea → lowland → highland →
//     snow) for a presentation-ready raster;
//   * SVG — vector rendering with contour bands, document points and
//     peak labels, the closest analog of the production ThemeView;
//   * annotated ASCII — the terminal rendering with peak markers.
#pragma once

#include <string>
#include <vector>

#include "sva/cluster/projection.hpp"
#include "sva/viz/contour.hpp"
#include "sva/viz/peaks.hpp"

namespace sva::viz {

/// Writes a plain (P2) PGM heightmap, densities normalized to 0..255,
/// `scale` output pixels per grid cell.
void write_pgm(const cluster::ThemeViewTerrain& terrain, const std::string& path,
               std::size_t scale = 4);

/// Writes a plain (P3) PPM with the terrain color ramp.
void write_ppm(const cluster::ThemeViewTerrain& terrain, const std::string& path,
               std::size_t scale = 4);

struct SvgConfig {
  std::size_t size_px = 640;     ///< output square dimension
  std::size_t contour_bands = 6;
  bool draw_points = true;
  std::size_t max_points = 4000;  ///< subsample beyond this many documents
  bool draw_labels = true;
};

/// Writes the full annotated landscape: filled background, contour bands,
/// (optionally subsampled) document points, peak markers and labels.
/// `points_xy` are interleaved world coordinates (may be empty).
void write_svg(const cluster::ThemeViewTerrain& terrain, const std::vector<Contour>& contours,
               const std::vector<Peak>& peaks, const std::vector<double>& points_xy,
               const std::string& path, const SvgConfig& config = {});

/// ASCII terrain with '^' peak markers and a numbered legend of labels.
[[nodiscard]] std::string ascii_with_peaks(const cluster::ThemeViewTerrain& terrain,
                                           const std::vector<Peak>& peaks);

}  // namespace sva::viz
