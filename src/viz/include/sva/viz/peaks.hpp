// Theme-peak detection over a ThemeView terrain.
//
// A ThemeView "mountain" (Figure 2) is a local maximum of the density
// landscape; its label is the theme of the documents that piled up
// there.  find_peaks locates the dominant maxima with a minimum
// separation (so one broad mountain is not reported as many ridge
// points); label_peaks attaches each peak to the nearest cluster
// centroid's theme terms, giving the annotated landscape an analyst
// actually reads.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sva/cluster/projection.hpp"

namespace sva::viz {

struct Peak {
  std::size_t row = 0;       ///< grid row of the maximum
  std::size_t col = 0;       ///< grid column of the maximum
  double height = 0.0;       ///< density at the maximum
  double x = 0.0;            ///< world x of the cell center
  double y = 0.0;            ///< world y of the cell center
  int cluster = -1;          ///< nearest cluster id (set by label_peaks)
  std::string label;         ///< theme label (set by label_peaks)
};

struct PeakConfig {
  /// Peaks lower than this fraction of the global maximum are noise.
  double min_height_fraction = 0.15;
  /// Chebyshev distance (cells) a peak must dominate.
  std::size_t min_separation = 3;
  /// Keep at most this many peaks (by height); 0 = no limit.
  std::size_t max_peaks = 12;
};

/// Finds local maxima of the terrain, highest first.
[[nodiscard]] std::vector<Peak> find_peaks(const cluster::ThemeViewTerrain& terrain,
                                           const PeakConfig& config = {});

/// Assigns each peak the nearest centroid (interleaved 2-D world
/// coordinates) and a label of the form "term1/term2/...".  Peaks keep
/// cluster = -1 when `centroids_xy` is empty.
void label_peaks(std::vector<Peak>& peaks, const std::vector<double>& centroids_xy,
                 const std::vector<std::vector<std::string>>& theme_labels,
                 std::size_t label_terms = 3);

}  // namespace sva::viz
