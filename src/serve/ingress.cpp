#include "sva/serve/ingress.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sva/fault/fault.hpp"
#include "sva/serve/protocol.hpp"
#include "sva/util/error.hpp"
#include "sva/util/parse.hpp"

namespace sva::serve {

namespace {

/// EINTR-safe full write of `text` to `fd`; returns false on error.
bool write_all(int fd, std::string_view text) {
  const char* p = text.data();
  std::size_t left = text.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_un make_unix_addr(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string s = path.string();
  require(s.size() < sizeof(addr.sun_path),
          "unix socket path too long: " + s);
  std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
  return addr;
}

}  // namespace

std::string format_stats(const ServerStats& s) {
  std::string out = "ok stats";
  const auto kv = [&out](const char* key, std::uint64_t v) {
    out += ' ';
    out += key;
    out += '=';
    out += std::to_string(v);
  };
  // Backend name is a fixed token (thread|process|socket), so the line
  // keeps its key=value grammar.
  out += " backend=";
  out += s.backend;
  kv("world_size", s.world_size);
  kv("sweeps", s.sweeps);
  kv("queries_swept", s.queries_swept);
  kv("rejected", s.rejected);
  kv("reloads", s.reloads);
  kv("ingests", s.ingests);
  kv("generation", s.generation);
  kv("submitted", s.scheduler.submitted);
  kv("batches", s.scheduler.batches);
  kv("size_flushes", s.scheduler.size_flushes);
  kv("deadline_flushes", s.scheduler.deadline_flushes);
  kv("max_batch", s.scheduler.max_batch);
  kv("cache_hits", s.cache.hits);
  kv("cache_misses", s.cache.misses);
  kv("cache_evictions", s.cache.evictions);
  kv("cache_invalidations", s.cache.invalidations);
  kv("cache_entries", s.cache.entries);
  kv("deadline_expired", s.scheduler.expired);
  kv("world_failures", s.failures.world_failures);
  kv("respawns", s.failures.respawns);
  kv("in_flight_failed", s.failures.in_flight_failed);
  kv("client_retries", s.failures.client_retries);
  // The reason stays one token so the stats line keeps its key=value
  // grammar whatever the exception text held.
  std::string reason = s.failures.last_failure.empty() ? "none" : s.failures.last_failure;
  for (char& c : reason) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t' || c == '=') c = '_';
  }
  out += " last_failure=" + reason;
  return out;
}

std::string process_request_line(Server& server, std::string_view line, bool* shutdown) {
  // Retrying clients announce each attempt with a "# retry <n>" comment
  // (still a blank line to the grammar — no response owed); counting them
  // here covers both transports.
  if (line.rfind("# retry", 0) == 0) server.note_client_retry();
  std::string error;
  const auto request = parse_request_line(line, error);
  if (!request.has_value()) return format_error(error);

  switch (request->kind) {
    case Request::Kind::kBlank:
      return {};
    case Request::Kind::kPing:
      return "ok pong";
    case Request::Kind::kStats:
      return format_stats(server.stats());
    case Request::Kind::kShutdown:
      if (shutdown != nullptr) *shutdown = true;
      server.stop();
      return "ok shutting-down";
    case Request::Kind::kReload:
      try {
        server.reload(request->reload_path).get();
        return "ok reloaded";
      } catch (const std::exception& e) {
        return format_error(e.what());
      }
    case Request::Kind::kIngest:
      try {
        const auto report =
            server.ingest(request->ingest_docs, request->ingest_out).get();
        return "ok ingested generation=" + std::to_string(report.generation) +
               " added=" + std::to_string(report.new_records) +
               " recluster=" + (report.recluster_recommended ? "1" : "0");
      } catch (const std::exception& e) {
        return format_error(e.what());
      }
    case Request::Kind::kQuery:
      try {
        return format_result(server.submit(request->query).get());
      } catch (const std::exception& e) {
        return format_error(e.what());
      }
  }
  return format_error("unreachable request kind");
}

// ---- SocketIngress -----------------------------------------------------

SocketIngress::SocketIngress(Server& server, std::filesystem::path socket_path,
                             std::chrono::milliseconds idle_timeout)
    : server_(server),
      socket_path_(std::move(socket_path)),
      idle_timeout_(idle_timeout) {}

SocketIngress::~SocketIngress() { stop(); }

void SocketIngress::start() {
  require(listen_fd_ < 0, "SocketIngress::start: already started");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "socket(AF_UNIX) failed: " + std::string(std::strerror(errno)));
  const sockaddr_un addr = make_unix_addr(socket_path_);
  // A stale socket file from a dead daemon blocks bind; remove it first.
  std::filesystem::remove(socket_path_);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("bind(" + socket_path_.string() + ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    std::filesystem::remove(socket_path_);
    throw Error("listen(" + socket_path_.string() + ") failed: " + std::strerror(err));
  }
  listen_fd_ = fd;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketIngress::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocked accept
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    threads.swap(client_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::filesystem::remove(socket_path_);
}

void SocketIngress::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatal) — stop() joins us
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(clients_mutex_);
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SocketIngress::serve_connection(int fd) {
  // A connection that goes silent between request bytes is closed after
  // the idle timeout — a wedged client must not pin this thread forever.
  if (idle_timeout_ > std::chrono::milliseconds::zero()) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(idle_timeout_.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((idle_timeout_.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  // Greet before reading anything: a peer from another build learns the
  // daemon's protocol version up front instead of diagnosing grammar
  // errors one line at a time.
  if (!write_all(fd, protocol_greeting() + "\n")) {
    ::close(fd);
    return;
  }
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // includes EAGAIN/EWOULDBLOCK: the idle timeout expired
    }
    if (n == 0) break;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string_view line(buffer.data() + start, nl - start);
      start = nl + 1;
      bool shutdown = false;
      std::string response;
      try {
        fault::point(fault::sites::kServeSocketLine);
        response = process_request_line(server_, line, &shutdown);
      } catch (const Error& e) {
        // An injected ingress fault answers like any other bad request —
        // the connection survives.
        response = format_error(e.what());
      }
      if (shutdown) shutdown_.store(true);
      if (!response.empty() && !write_all(fd, response + "\n")) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

// ---- FileQueueIngress --------------------------------------------------

FileQueueIngress::FileQueueIngress(Server& server, std::filesystem::path spool_dir,
                                   std::chrono::milliseconds poll_interval)
    : server_(server), spool_dir_(std::move(spool_dir)), poll_interval_(poll_interval) {}

FileQueueIngress::~FileQueueIngress() { stop(); }

void FileQueueIngress::start() {
  require(!poll_thread_.joinable(), "FileQueueIngress::start: already started");
  std::filesystem::create_directories(spool_dir_);
  // Requests claimed by a poller that died before answering must not
  // strand their clients: sweep them back before serving anything new.
  recover_stale_claims();
  stopping_.store(false);
  poll_thread_ = std::thread([this] { poll_loop(); });
}

void FileQueueIngress::stop() {
  if (!poll_thread_.joinable()) return;
  stopping_.store(true);
  poll_thread_.join();
}

std::size_t FileQueueIngress::recover_stale_claims() {
  std::size_t recovered = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(spool_dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    // A claim is `<stem>.req.claimed.<pid>`; the claiming pid is the
    // liveness witness.
    const std::string name = entry.path().filename().string();
    const std::size_t mark = name.rfind(".req.claimed.");
    if (mark == std::string::npos) continue;
    const auto pid = parse_u64(name.substr(mark + sizeof(".req.claimed.") - 1));
    if (!pid) continue;
    if (*pid == static_cast<std::uint64_t>(::getpid())) continue;  // ours, in flight
    if (::kill(static_cast<pid_t>(*pid), 0) == 0 || errno != ESRCH) {
      continue;  // claimer still alive (or unknowable) — leave it be
    }
    const std::filesystem::path back =
        entry.path().parent_path() / name.substr(0, mark + sizeof(".req") - 1);
    std::filesystem::rename(entry.path(), back, ec);
    if (!ec) ++recovered;
  }
  return recovered;
}

void FileQueueIngress::poll_loop() {
  std::uint64_t iterations = 0;
  while (!stopping_.load()) {
    // Periodic stale-claim sweep: a sibling poller can die at any time.
    if (iterations++ % 64 == 0) recover_stale_claims();
    bool worked = false;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(spool_dir_, ec)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".req") continue;
      handle_request_file(entry.path());
      worked = true;
    }
    if (!worked) std::this_thread::sleep_for(poll_interval_);
  }
}

void FileQueueIngress::handle_request_file(const std::filesystem::path& req) {
  // Claim by rename: a competing poller loses the race and skips.
  const std::filesystem::path claimed = req.string() + ".claimed." +
                                        std::to_string(::getpid());
  std::error_code ec;
  std::filesystem::rename(req, claimed, ec);
  if (ec) return;

  try {
    // A kill action here dies holding the claim — exactly the stale
    // claim recover_stale_claims() exists to sweep.
    fault::point(fault::sites::kServeSpoolFile);
  } catch (const Error&) {
    // An injected error abandons the claim cleanly: hand the request
    // back so any poller (including us, next pass) can answer it.
    std::filesystem::rename(claimed, req, ec);
    return;
  }

  std::string responses;
  {
    std::ifstream in(claimed);
    std::string line;
    while (std::getline(in, line)) {
      bool shutdown = false;
      const std::string response = process_request_line(server_, line, &shutdown);
      if (shutdown) shutdown_.store(true);
      if (!response.empty()) {
        responses += response;
        responses += '\n';
      }
    }
  }

  // Atomic response drop: the client never observes a half-written file.
  std::filesystem::path resp = req;
  resp.replace_extension(".resp");
  const std::filesystem::path tmp = resp.string() + ".tmp." +
                                    std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << responses;
  }
  std::filesystem::rename(tmp, resp, ec);
  std::filesystem::remove(claimed, ec);
}

// ---- client helper -----------------------------------------------------

namespace {

/// One connect-send-collect pass (the pre-retry client_roundtrip).
std::vector<std::string> roundtrip_once(const std::filesystem::path& socket_path,
                                        const std::vector<std::string>& lines) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "socket(AF_UNIX) failed: " + std::string(std::strerror(errno)));
  const sockaddr_un addr = make_unix_addr(socket_path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("connect(" + socket_path.string() + ") failed: " + std::strerror(err));
  }

  std::string request;
  std::size_t expected = 0;
  for (const auto& line : lines) {
    request += line;
    request += '\n';
    // Count the lines that get a response exactly as the daemon decides
    // it: everything except a clean blank/comment/version-header parse.
    std::string error;
    const auto probe = parse_request_line(line, error);
    if (!probe.has_value() || probe->kind != Request::Kind::kBlank) ++expected;
  }
  if (!write_all(fd, request)) {
    const int err = errno;
    ::close(fd);
    throw Error("write to daemon failed: " + std::string(std::strerror(err)));
  }
  ::shutdown(fd, SHUT_WR);

  // The first line back is the daemon's version greeting, not a response;
  // validate it before trusting anything that follows.
  bool greeted = false;

  std::vector<std::string> responses;
  std::string buffer;
  char chunk[4096];
  try {
    while (!greeted || responses.size() < expected) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = buffer.substr(start, nl - start);
        start = nl + 1;
        if (!greeted) {
          check_peer_greeting(line);
          greeted = true;
        } else {
          responses.emplace_back(std::move(line));
        }
      }
      buffer.erase(0, start);
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  require(greeted, "daemon closed the connection before greeting");
  require(responses.size() == expected,
          "daemon closed the connection early (" + std::to_string(responses.size()) +
              "/" + std::to_string(expected) + " responses)");
  return responses;
}

}  // namespace

std::vector<std::string> client_roundtrip(const std::filesystem::path& socket_path,
                                          const std::vector<std::string>& lines,
                                          const ClientRetryPolicy& retry) {
  // Only an all-idempotent batch may retry: re-running a query or a ping
  // is harmless, re-running a reload/ingest/shutdown is not.
  const bool retryable =
      std::all_of(lines.begin(), lines.end(),
                  [](const std::string& line) { return retry_safe_line(line); });
  const std::string failure_response = "error " + std::string(kWorldFailureMark);
  auto backoff = retry.backoff;

  for (int attempt = 0;; ++attempt) {
    std::vector<std::string> request = lines;
    if (attempt > 0) {
      // Announce the retry so the daemon's stats can count it; a comment
      // line is legal on every plane and owes no response.
      request.insert(request.begin(), "# retry " + std::to_string(attempt));
    }
    const bool last = !retryable || attempt + 1 >= retry.attempts;
    try {
      auto responses = roundtrip_once(socket_path, request);
      const bool world_failed =
          std::any_of(responses.begin(), responses.end(),
                      [&failure_response](const std::string& r) {
                        return r.rfind(failure_response, 0) == 0;
                      });
      if (!world_failed || last) return responses;
    } catch (const Error&) {
      // Transport failure: the daemon may be restarting its socket (or
      // the world died before answering) — retry rides the respawn.
      if (last) throw;
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, retry.backoff_max);
  }
}

}  // namespace sva::serve
