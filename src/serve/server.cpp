#include "sva/serve/server.hpp"

#include <algorithm>
#include <utility>

#include <fstream>
#include <sstream>

#include "sva/corpus/document.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/section_file.hpp"
#include "sva/fault/fault.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/serve/protocol.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::serve {

namespace {

// Serve-loop command opcodes: rank 0 encodes, every rank decodes the
// same blob, so the world executes the identical collective sequence.
constexpr std::uint64_t kOpSweep = 0;   ///< count + encoded queries
constexpr std::uint64_t kOpReload = 1;  ///< bundle path string
constexpr std::uint64_t kOpExit = 2;
constexpr std::uint64_t kOpIngest = 3;  ///< base path + docs text + out path

constexpr const char* kShuttingDown = "server is shutting down";

std::vector<std::uint8_t> encode_exit() {
  ByteWriter w;
  w.u64(kOpExit);
  return std::move(w.bytes);
}

/// Renders a captured exception for failure reporting.
std::string describe_exception(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// One document per non-empty line, ids = positions (the contract
/// engine::ingest_delta expects from its reader).
corpus::SourceSet parse_ingest_docs(const std::string& text) {
  corpus::SourceSet docs;
  std::size_t start = 0;
  std::uint64_t seq = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    if (nl > start) {
      corpus::RawDocument doc;
      doc.id = seq++;
      doc.fields.push_back({"body", text.substr(start, nl - start)});
      docs.add(std::move(doc));
    }
    start = nl + 1;
  }
  return docs;
}

}  // namespace

Server::Server(std::filesystem::path bundle_path, ServeOptions options)
    : bundle_path_(std::move(bundle_path)),
      options_(options),
      scheduler_(options.batch_max, options.batch_deadline, options.admission_deadline),
      cache_(options.cache_capacity) {
  served_path_ = bundle_path_;
}

Server::~Server() {
  stop_now();
  if (world_thread_.joinable()) world_thread_.join();
}

void Server::start() {
  require(!world_thread_.joinable(), "Server::start: already started");
  auto ready = ready_.get_future();
  running_.store(true);  // before the spawn: the thread clears it on exit
  world_thread_ = std::thread([this] { supervise(); });
  ready.get();  // rethrows a failed first Session::open
}

void Server::supervise() {
  ga::SpmdOptions world_options;
  world_options.nprocs = options_.procs;
  world_options.comm_model = options_.model;
  world_options.backend = options_.backend;
  world_options.socket_rendezvous = options_.socket_rendezvous;
  world_options.socket_node = options_.socket_node;
  world_options.socket_nodes = options_.socket_nodes;

  bool ever_healthy = false;
  int consecutive_failures = 0;
  auto backoff = options_.respawn_backoff;
  std::exception_ptr fatal;

  for (;;) {
    world_healthy_.store(false);
    std::exception_ptr err;
    try {
      ga::spmd_run(world_options, [this](ga::Context& ctx) { serve_world(ctx); });
    } catch (...) {
      err = std::current_exception();
    }
    if (err == nullptr) break;  // serve_world only returns on kOpExit

    // The world died abnormally.  Name the failure and fail every future
    // the dead world owned — a client must see an error, never a hang.
    const std::string reason = describe_exception(err);
    world_failures_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(meta_mutex_);
      last_failure_ = reason;
    }
    fail_world_owned(reason);

    const bool was_healthy = world_healthy_.load();
    ever_healthy = ever_healthy || was_healthy;
    if (!options_.respawn || !ever_healthy) {
      // Respawning only makes sense over a bundle that has served: a
      // world that never opened fails start() loudly instead of retrying
      // a configuration that has never worked.
      fatal = err;
      break;
    }
    consecutive_failures = was_healthy ? 1 : consecutive_failures + 1;
    backoff = was_healthy
                  ? options_.respawn_backoff
                  : std::min(backoff * 2, options_.respawn_backoff_max);
    if (consecutive_failures > options_.max_respawn_attempts) {
      fatal = std::make_exception_ptr(WorldFailure(
          "world failure: giving up after " +
          std::to_string(options_.max_respawn_attempts) +
          " consecutive respawn attempts (last: " + reason + ")"));
      break;
    }

    // Bounded exponential backoff, in slices so shutdown stays prompt and
    // queued work cannot wait past its admission deadline while nothing
    // is draining the scheduler.
    const auto until = std::chrono::steady_clock::now() + backoff;
    bool bail = false;
    for (;;) {
      if (cancel_.load() || (scheduler_.stopped() && scheduler_.pending() == 0)) {
        bail = true;  // shutdown requested with nothing left to serve
        break;
      }
      scheduler_.fail_expired();
      const auto now = std::chrono::steady_clock::now();
      if (now >= until) break;
      std::this_thread::sleep_for(
          std::min<std::chrono::steady_clock::duration>(
              until - now, std::chrono::milliseconds(20)));
    }
    if (bail) break;

    // Re-validate the last-good bundle serially before burning a fresh
    // world on it (the reload path's pre-validation idiom): a vanished or
    // torn file counts as a failed attempt and retries with backoff.
    std::filesystem::path serving;
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      serving = served_path_;
    }
    try {
      (void)engine::SectionedFile::read(serving, engine::kBundleMagic,
                                        engine::kBundleFormatVersion, "bundle");
    } catch (const std::exception& e) {
      ++consecutive_failures;
      backoff = std::min(backoff * 2, options_.respawn_backoff_max);
      {
        std::lock_guard<std::mutex> lock(meta_mutex_);
        last_failure_ = e.what();
      }
      if (consecutive_failures > options_.max_respawn_attempts) {
        fatal = std::make_exception_ptr(WorldFailure(
            "world failure: giving up after " +
            std::to_string(options_.max_respawn_attempts) +
            " consecutive respawn attempts (last-good bundle no longer "
            "validates: " + std::string(e.what()) + ")"));
        break;
      }
      continue;  // without respawning: the bundle must validate first
    }
    respawns_.fetch_add(1);
  }

  {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    run_error_ = fatal;
  }
  running_.store(false);

  // The last world is gone for good: everything still queued (or arriving
  // late) must fail rather than hang its client.
  std::exception_ptr down;
  {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    down = run_error_ != nullptr
               ? run_error_
               : std::make_exception_ptr(InvalidArgument(kShuttingDown));
    if (!ready_signalled_) {
      ready_signalled_ = true;
      ready_.set_exception(down);
    }
  }
  scheduler_.stop();
  for (;;) {
    auto rest = scheduler_.take_batch();
    if (rest.empty()) break;
    for (auto& q : rest) q.promise.set_exception(down);
  }
  for (auto& q : inflight_) q.promise.set_exception(down);
  inflight_.clear();
  if (current_reload_.has_value()) {
    current_reload_->promise.set_exception(down);
    current_reload_.reset();
  }
  if (current_ingest_.has_value()) {
    current_ingest_->promise.set_exception(down);
    current_ingest_.reset();
  }
  std::deque<ReloadRequest> reloads;
  std::deque<IngestRequest> ingests;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    reloads.swap(reloads_);
    ingests.swap(ingests_);
  }
  for (auto& r : reloads) r.promise.set_exception(down);
  for (auto& r : ingests) r.promise.set_exception(down);
}

void Server::fail_world_owned(const std::string& reason) {
  const auto err =
      std::make_exception_ptr(WorldFailure("world failure: " + reason));
  std::uint64_t failed = inflight_.size();
  for (auto& q : inflight_) q.promise.set_exception(err);
  inflight_.clear();
  if (current_reload_.has_value()) {
    current_reload_->promise.set_exception(err);
    current_reload_.reset();
    ++failed;
  }
  if (current_ingest_.has_value()) {
    current_ingest_->promise.set_exception(err);
    current_ingest_.reset();
    ++failed;
  }
  in_flight_failed_.fetch_add(failed);
}

void Server::serve_world(ga::Context& ctx) {
  // The bundle this world serves from birth: the original bundle, or
  // wherever the previous world's reloads/ingests had moved to.  Under
  // the process backend the forked ranks inherit the parent's value as of
  // the fork, which is exactly this world's starting point.
  std::filesystem::path served_path;
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    served_path = served_path_;
  }

  auto session = query::Session::open(ctx, served_path);
  refresh_metadata(ctx, session);
  if (ctx.rank() == 0) {
    world_healthy_.store(true);
    std::lock_guard<std::mutex> lock(meta_mutex_);
    if (!ready_signalled_) {
      ready_signalled_ = true;
      ready_.set_value();
    }
  }

  for (;;) {
    std::vector<std::uint8_t> command;
    if (ctx.rank() == 0) {
      command = next_command(served_path);
    }
    ga::broadcast_bytes(ctx, command, 0);
    ByteReader in(command);
    const std::uint64_t op = in.u64();

    if (op == kOpExit) break;

    if (op == kOpReload) {
      const std::string path = in.str();
      try {
        auto next = query::Session::open(ctx, path);
        session = std::move(next);
        served_path = path;
        refresh_metadata(ctx, session);
        if (ctx.rank() == 0) {
          {
            std::lock_guard<std::mutex> lock(control_mutex_);
            served_path_ = served_path;
          }
          cache_.invalidate_all();
          reload_count_.fetch_add(1);
          current_reload_->promise.set_value();
          current_reload_.reset();
        }
      } catch (const ProtocolError&) {
        throw;  // world aborted — the supervisor owns recovery
      } catch (const Error&) {
        // Every rank parsed the same broadcast image, so the throw is
        // symmetric: the old session keeps serving.
        if (ctx.rank() == 0) {
          current_reload_->promise.set_exception(std::current_exception());
          current_reload_.reset();
        }
      }
      continue;
    }

    if (op == kOpIngest) {
      const std::string base = in.str();
      const std::string docs_text = in.str();
      const std::string out = in.str();
      try {
        // The whole delta runs collectively inside the serving world —
        // scan the new documents, extend the base generation, write the
        // next bundle — then the live Session swaps through the same
        // open-validate-replace sequence reload uses.
        const corpus::SourceSet docs = parse_ingest_docs(docs_text);
        const corpus::InMemoryReader reader(docs);
        const engine::DeltaReport report = engine::ingest_delta(ctx, base, reader, out);
        auto next = query::Session::open(ctx, out);
        session = std::move(next);
        served_path = out;
        refresh_metadata(ctx, session);
        if (ctx.rank() == 0) {
          {
            std::lock_guard<std::mutex> lock(control_mutex_);
            served_path_ = served_path;
          }
          cache_.invalidate_all();
          ingest_count_.fetch_add(1);
          current_ingest_->promise.set_value(report);
          current_ingest_.reset();
        }
      } catch (const ProtocolError&) {
        throw;  // world aborted — the supervisor owns recovery
      } catch (const Error&) {
        // Symmetric throw (replicated inputs): the old generation keeps
        // serving.
        if (ctx.rank() == 0) {
          current_ingest_->promise.set_exception(std::current_exception());
          current_ingest_.reset();
        }
      }
      continue;
    }

    // kOpSweep: decode and run the batch collectively.
    const std::uint64_t count = in.u64();
    std::vector<query::Query> queries;
    queries.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) queries.push_back(decode_query(in));

    fault::point(fault::sites::kServeSweep);

    query::BatchControl control;
    control.cancel = &cancel_;
    std::vector<query::QueryResult> results;
    std::string sweep_error;
    try {
      results = session.run_batch(queries, control);
    } catch (const ProtocolError&) {
      throw;  // world aborted — the supervisor owns recovery
    } catch (const Error& e) {
      // Validation throws are symmetric (identical queries on every
      // rank); admission filtering makes them rare, not impossible.
      sweep_error = e.what();
    }

    if (ctx.rank() == 0) {
      sweeps_.fetch_add(1);
      if (!sweep_error.empty()) {
        fail_batch(inflight_, sweep_error);
      } else if (results.size() != queries.size()) {
        fail_batch(inflight_, kShuttingDown);  // sweep abandoned mid-flight
      } else {
        queries_swept_.fetch_add(inflight_.size());
        for (std::size_t i = 0; i < inflight_.size(); ++i) {
          cache_.insert(inflight_[i].digest, inflight_[i].key, results[i]);
          inflight_[i].promise.set_value(std::move(results[i]));
        }
      }
      inflight_.clear();
    }
  }
}

std::vector<std::uint8_t> Server::next_command(const std::filesystem::path& served_path) {
  for (;;) {
    // Control commands outrank queued queries.
    std::optional<ReloadRequest> reload;
    std::optional<IngestRequest> ingest;
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      if (!reloads_.empty()) {
        reload.emplace(std::move(reloads_.front()));
        reloads_.pop_front();
      } else if (!ingests_.empty()) {
        ingest.emplace(std::move(ingests_.front()));
        ingests_.pop_front();
      }
    }
    if (reload.has_value()) {
      try {
        // Serial pre-validation on rank 0: a missing or corrupt file must
        // fail this request, not strand the other ranks mid-broadcast.
        (void)engine::SectionedFile::read(reload->path, engine::kBundleMagic,
                                          engine::kBundleFormatVersion, "bundle");
      } catch (...) {
        reload->promise.set_exception(std::current_exception());
        continue;
      }
      ByteWriter w;
      w.u64(kOpReload);
      w.str(reload->path.string());
      current_reload_ = std::move(reload);
      return std::move(w.bytes);
    }
    if (ingest.has_value()) {
      // Serial pre-read on rank 0: the documents travel in the command
      // blob so every rank scans identical bytes, and an unreadable file
      // fails this request instead of stranding the world.
      std::string docs_text;
      try {
        std::ifstream docs(ingest->docs, std::ios::binary);
        require(docs.good(), "ingest: cannot open documents file " + ingest->docs.string());
        std::ostringstream collect;
        collect << docs.rdbuf();
        docs_text = std::move(collect).str();
      } catch (...) {
        ingest->promise.set_exception(std::current_exception());
        continue;
      }
      ByteWriter w;
      w.u64(kOpIngest);
      w.str(served_path.string());
      w.str(docs_text);
      w.str(ingest->out.string());
      current_ingest_ = std::move(ingest);
      return std::move(w.bytes);
    }

    if (cancel_.load()) {
      // Urgent shutdown: fail everything still queued instead of
      // sweeping it.
      scheduler_.stop();
      for (;;) {
        auto rest = scheduler_.take_batch();
        if (rest.empty()) break;
        fail_batch(rest, kShuttingDown);
      }
      return encode_exit();
    }

    auto batch = scheduler_.take_batch([this] {
      if (cancel_.load()) return true;
      std::lock_guard<std::mutex> lock(control_mutex_);
      return !reloads_.empty() || !ingests_.empty();
    });
    if (!batch.empty()) {
      ByteWriter w;
      w.u64(kOpSweep);
      w.u64(batch.size());
      for (const auto& q : batch) encode_query(w, q.query);
      // Parked before the broadcast: if the world dies anywhere between
      // here and the sweep completing, the supervisor fails these
      // futures with WorldFailure instead of leaving clients hanging.
      inflight_ = std::move(batch);
      return std::move(w.bytes);
    }
    if (scheduler_.stopped() && scheduler_.pending() == 0 && !cancel_.load()) {
      return encode_exit();  // graceful drain complete
    }
    // Interrupted for a control command — loop and pick it up.
  }
}

std::string Server::validate(const query::Query& q) const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  if (q.k < 1) return "query: k must be >= 1";
  switch (q.kind) {
    case query::Query::Kind::kSimilarByProbe:
      if (q.probe.size() != meta_.dimension) {
        return "query: probe dimension mismatch (bundle dimension is " +
               std::to_string(meta_.dimension) + ", got " +
               std::to_string(q.probe.size()) + ")";
      }
      break;
    case query::Query::Kind::kSimilarByDoc:
      if (meta_.doc_ids.find(q.doc_id) == meta_.doc_ids.end()) {
        return "query: unknown doc id " + std::to_string(q.doc_id);
      }
      break;
    case query::Query::Kind::kClusterSummary:
      if (q.cluster < 0 ||
          static_cast<std::size_t>(q.cluster) >= meta_.num_clusters) {
        return "query: cluster " + std::to_string(q.cluster) +
               " out of range (bundle has " + std::to_string(meta_.num_clusters) +
               " clusters)";
      }
      break;
  }
  return {};
}

void Server::fail_batch(std::vector<PendingQuery>& batch, const std::string& why) {
  for (auto& q : batch) {
    q.promise.set_exception(std::make_exception_ptr(InvalidArgument(why)));
  }
  batch.clear();
}

std::future<query::QueryResult> Server::submit(query::Query q) {
  const std::string why = validate(q);
  if (!why.empty()) {
    rejected_.fetch_add(1);
    std::promise<query::QueryResult> p;
    p.set_exception(std::make_exception_ptr(InvalidArgument(why)));
    return p.get_future();
  }
  auto key = query_key_bytes(q);
  const std::uint64_t digest = engine::fnv1a64(key.data(), key.size());
  if (auto hit = cache_.lookup(digest, key)) {
    std::promise<query::QueryResult> p;
    p.set_value(std::move(*hit));
    return p.get_future();
  }
  return scheduler_.submit(std::move(q), digest, std::move(key));
}

std::future<void> Server::reload(std::filesystem::path new_bundle) {
  ReloadRequest request;
  request.path = std::move(new_bundle);
  auto future = request.promise.get_future();
  if (!running_.load()) {
    request.promise.set_exception(
        std::make_exception_ptr(InvalidArgument(kShuttingDown)));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    reloads_.push_back(std::move(request));
  }
  scheduler_.wake();
  return future;
}

std::future<engine::DeltaReport> Server::ingest(std::filesystem::path docs_file,
                                                std::filesystem::path out_bundle) {
  IngestRequest request;
  request.docs = std::move(docs_file);
  request.out = std::move(out_bundle);
  auto future = request.promise.get_future();
  if (!running_.load()) {
    request.promise.set_exception(
        std::make_exception_ptr(InvalidArgument(kShuttingDown)));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    ingests_.push_back(std::move(request));
  }
  scheduler_.wake();
  return future;
}

void Server::stop() {
  scheduler_.stop();
}

void Server::stop_now() {
  cancel_.store(true);
  scheduler_.stop();
}

void Server::join() {
  if (world_thread_.joinable()) world_thread_.join();
  std::lock_guard<std::mutex> lock(meta_mutex_);
  if (run_error_ != nullptr && !joined_) {
    joined_ = true;
    std::rethrow_exception(run_error_);
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.backend = ga::backend_name(options_.backend);
  out.world_size = static_cast<std::uint64_t>(options_.procs);
  out.sweeps = sweeps_.load();
  out.queries_swept = queries_swept_.load();
  out.rejected = rejected_.load();
  out.reloads = reload_count_.load();
  out.ingests = ingest_count_.load();
  out.generation = generation_.load();
  out.scheduler = scheduler_.stats();
  out.cache = cache_.stats();
  out.failures.world_failures = world_failures_.load();
  out.failures.respawns = respawns_.load();
  out.failures.in_flight_failed = in_flight_failed_.load();
  out.failures.client_retries = client_retries_.load();
  {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    out.failures.last_failure = last_failure_;
  }
  return out;
}

std::uint64_t Server::num_documents() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  return meta_.num_documents;
}

std::size_t Server::num_clusters() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  return meta_.num_clusters;
}

std::size_t Server::dimension() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  return meta_.dimension;
}

void Server::refresh_metadata(ga::Context& ctx, query::Session& session) {
  const auto& local_ids = session.bundle().signatures.doc_ids;
  const auto all_ids =
      ctx.allgatherv(std::span<const std::uint64_t>(local_ids));
  if (ctx.rank() == 0) {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    meta_.num_documents = session.num_documents();
    meta_.dimension = session.dimension();
    meta_.num_clusters = session.num_clusters();
    meta_.doc_ids.clear();
    meta_.doc_ids.insert(all_ids.begin(), all_ids.end());
    generation_.store(session.generation());
  }
}

}  // namespace sva::serve
