#include "sva/serve/server.hpp"

#include <utility>

#include <fstream>
#include <sstream>

#include "sva/corpus/document.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/section_file.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/serve/protocol.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::serve {

namespace {

// Serve-loop command opcodes: rank 0 encodes, every rank decodes the
// same blob, so the world executes the identical collective sequence.
constexpr std::uint64_t kOpSweep = 0;   ///< count + encoded queries
constexpr std::uint64_t kOpReload = 1;  ///< bundle path string
constexpr std::uint64_t kOpExit = 2;
constexpr std::uint64_t kOpIngest = 3;  ///< base path + docs text + out path

constexpr const char* kShuttingDown = "server is shutting down";

std::vector<std::uint8_t> encode_exit() {
  ByteWriter w;
  w.u64(kOpExit);
  return std::move(w.bytes);
}

/// One document per non-empty line, ids = positions (the contract
/// engine::ingest_delta expects from its reader).
corpus::SourceSet parse_ingest_docs(const std::string& text) {
  corpus::SourceSet docs;
  std::size_t start = 0;
  std::uint64_t seq = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    if (nl > start) {
      corpus::RawDocument doc;
      doc.id = seq++;
      doc.fields.push_back({"body", text.substr(start, nl - start)});
      docs.add(std::move(doc));
    }
    start = nl + 1;
  }
  return docs;
}

}  // namespace

Server::Server(std::filesystem::path bundle_path, ServeOptions options)
    : bundle_path_(std::move(bundle_path)),
      options_(options),
      scheduler_(options.batch_max, options.batch_deadline),
      cache_(options.cache_capacity) {}

Server::~Server() {
  stop_now();
  if (world_thread_.joinable()) world_thread_.join();
}

void Server::start() {
  require(!world_thread_.joinable(), "Server::start: already started");
  auto ready = ready_.get_future();
  running_.store(true);  // before the spawn: the thread clears it on exit
  world_thread_ = std::thread([this] {
    try {
      ga::SpmdOptions world_options;
      world_options.nprocs = options_.procs;
      world_options.comm_model = options_.model;
      world_options.backend = options_.backend;
      ga::spmd_run(world_options, [this](ga::Context& ctx) { serve_world(ctx); });
    } catch (...) {
      std::lock_guard<std::mutex> lock(meta_mutex_);
      run_error_ = std::current_exception();
    }
    running_.store(false);

    // The world is gone: everything still queued (or arriving late) must
    // fail rather than hang its client.
    std::exception_ptr down;
    {
      std::lock_guard<std::mutex> lock(meta_mutex_);
      down = run_error_ != nullptr
                 ? run_error_
                 : std::make_exception_ptr(InvalidArgument(kShuttingDown));
      if (!ready_signalled_) {
        ready_signalled_ = true;
        ready_.set_exception(down);
      }
    }
    scheduler_.stop();
    for (;;) {
      auto rest = scheduler_.take_batch();
      if (rest.empty()) break;
      for (auto& q : rest) q.promise.set_exception(down);
    }
    if (current_reload_.has_value()) {
      current_reload_->promise.set_exception(down);
      current_reload_.reset();
    }
    if (current_ingest_.has_value()) {
      current_ingest_->promise.set_exception(down);
      current_ingest_.reset();
    }
    std::deque<ReloadRequest> reloads;
    std::deque<IngestRequest> ingests;
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      reloads.swap(reloads_);
      ingests.swap(ingests_);
    }
    for (auto& r : reloads) r.promise.set_exception(down);
    for (auto& r : ingests) r.promise.set_exception(down);
  });
  ready.get();  // rethrows a failed Session::open
}

void Server::serve_world(ga::Context& ctx) {
  auto session = query::Session::open(ctx, bundle_path_);
  refresh_metadata(ctx, session);
  if (ctx.rank() == 0) {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    ready_signalled_ = true;
    ready_.set_value();
  }

  // The bundle this world currently serves — reload and ingest both move
  // it.  Every rank tracks it identically (the path travels in the
  // broadcast command blob), so it needs no synchronization.
  std::filesystem::path served_path = bundle_path_;

  std::vector<PendingQuery> batch;
  for (;;) {
    std::vector<std::uint8_t> command;
    if (ctx.rank() == 0) {
      batch.clear();
      command = next_command(batch, served_path);
    }
    ga::broadcast_bytes(ctx, command, 0);
    ByteReader in(command);
    const std::uint64_t op = in.u64();

    if (op == kOpExit) break;

    if (op == kOpReload) {
      const std::string path = in.str();
      try {
        auto next = query::Session::open(ctx, path);
        session = std::move(next);
        served_path = path;
        refresh_metadata(ctx, session);
        if (ctx.rank() == 0) {
          cache_.invalidate_all();
          reload_count_.fetch_add(1);
          current_reload_->promise.set_value();
          current_reload_.reset();
        }
      } catch (const ProtocolError&) {
        throw;  // world aborted — unrecoverable
      } catch (const Error&) {
        // Every rank parsed the same broadcast image, so the throw is
        // symmetric: the old session keeps serving.
        if (ctx.rank() == 0) {
          current_reload_->promise.set_exception(std::current_exception());
          current_reload_.reset();
        }
      }
      continue;
    }

    if (op == kOpIngest) {
      const std::string base = in.str();
      const std::string docs_text = in.str();
      const std::string out = in.str();
      try {
        // The whole delta runs collectively inside the serving world —
        // scan the new documents, extend the base generation, write the
        // next bundle — then the live Session swaps through the same
        // open-validate-replace sequence reload uses.
        const corpus::SourceSet docs = parse_ingest_docs(docs_text);
        const corpus::InMemoryReader reader(docs);
        const engine::DeltaReport report = engine::ingest_delta(ctx, base, reader, out);
        auto next = query::Session::open(ctx, out);
        session = std::move(next);
        served_path = out;
        refresh_metadata(ctx, session);
        if (ctx.rank() == 0) {
          cache_.invalidate_all();
          ingest_count_.fetch_add(1);
          current_ingest_->promise.set_value(report);
          current_ingest_.reset();
        }
      } catch (const ProtocolError&) {
        throw;  // world aborted — unrecoverable
      } catch (const Error&) {
        // Symmetric throw (replicated inputs): the old generation keeps
        // serving.
        if (ctx.rank() == 0) {
          current_ingest_->promise.set_exception(std::current_exception());
          current_ingest_.reset();
        }
      }
      continue;
    }

    // kOpSweep: decode and run the batch collectively.
    const std::uint64_t count = in.u64();
    std::vector<query::Query> queries;
    queries.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) queries.push_back(decode_query(in));

    query::BatchControl control;
    control.cancel = &cancel_;
    std::vector<query::QueryResult> results;
    std::string sweep_error;
    try {
      results = session.run_batch(queries, control);
    } catch (const ProtocolError&) {
      throw;
    } catch (const Error& e) {
      // Validation throws are symmetric (identical queries on every
      // rank); admission filtering makes them rare, not impossible.
      sweep_error = e.what();
    }

    if (ctx.rank() == 0) {
      sweeps_.fetch_add(1);
      if (!sweep_error.empty()) {
        fail_batch(batch, sweep_error);
      } else if (results.size() != queries.size()) {
        fail_batch(batch, kShuttingDown);  // sweep abandoned mid-flight
      } else {
        queries_swept_.fetch_add(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          cache_.insert(batch[i].digest, batch[i].key, results[i]);
          batch[i].promise.set_value(std::move(results[i]));
        }
      }
      batch.clear();
    }
  }
}

std::vector<std::uint8_t> Server::next_command(std::vector<PendingQuery>& batch_out,
                                               const std::filesystem::path& served_path) {
  for (;;) {
    // Control commands outrank queued queries.
    std::optional<ReloadRequest> reload;
    std::optional<IngestRequest> ingest;
    {
      std::lock_guard<std::mutex> lock(control_mutex_);
      if (!reloads_.empty()) {
        reload.emplace(std::move(reloads_.front()));
        reloads_.pop_front();
      } else if (!ingests_.empty()) {
        ingest.emplace(std::move(ingests_.front()));
        ingests_.pop_front();
      }
    }
    if (reload.has_value()) {
      try {
        // Serial pre-validation on rank 0: a missing or corrupt file must
        // fail this request, not strand the other ranks mid-broadcast.
        (void)engine::SectionedFile::read(reload->path, engine::kBundleMagic,
                                          engine::kBundleFormatVersion, "bundle");
      } catch (...) {
        reload->promise.set_exception(std::current_exception());
        continue;
      }
      ByteWriter w;
      w.u64(kOpReload);
      w.str(reload->path.string());
      current_reload_ = std::move(reload);
      return std::move(w.bytes);
    }
    if (ingest.has_value()) {
      // Serial pre-read on rank 0: the documents travel in the command
      // blob so every rank scans identical bytes, and an unreadable file
      // fails this request instead of stranding the world.
      std::string docs_text;
      try {
        std::ifstream docs(ingest->docs, std::ios::binary);
        require(docs.good(), "ingest: cannot open documents file " + ingest->docs.string());
        std::ostringstream collect;
        collect << docs.rdbuf();
        docs_text = std::move(collect).str();
      } catch (...) {
        ingest->promise.set_exception(std::current_exception());
        continue;
      }
      ByteWriter w;
      w.u64(kOpIngest);
      w.str(served_path.string());
      w.str(docs_text);
      w.str(ingest->out.string());
      current_ingest_ = std::move(ingest);
      return std::move(w.bytes);
    }

    if (cancel_.load()) {
      // Urgent shutdown: fail everything still queued instead of
      // sweeping it.
      scheduler_.stop();
      for (;;) {
        auto rest = scheduler_.take_batch();
        if (rest.empty()) break;
        fail_batch(rest, kShuttingDown);
      }
      return encode_exit();
    }

    auto batch = scheduler_.take_batch([this] {
      if (cancel_.load()) return true;
      std::lock_guard<std::mutex> lock(control_mutex_);
      return !reloads_.empty() || !ingests_.empty();
    });
    if (!batch.empty()) {
      ByteWriter w;
      w.u64(kOpSweep);
      w.u64(batch.size());
      for (const auto& q : batch) encode_query(w, q.query);
      batch_out = std::move(batch);
      return std::move(w.bytes);
    }
    if (scheduler_.stopped() && scheduler_.pending() == 0 && !cancel_.load()) {
      return encode_exit();  // graceful drain complete
    }
    // Interrupted for a control command — loop and pick it up.
  }
}

std::string Server::validate(const query::Query& q) const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  if (q.k < 1) return "query: k must be >= 1";
  switch (q.kind) {
    case query::Query::Kind::kSimilarByProbe:
      if (q.probe.size() != meta_.dimension) {
        return "query: probe dimension mismatch (bundle dimension is " +
               std::to_string(meta_.dimension) + ", got " +
               std::to_string(q.probe.size()) + ")";
      }
      break;
    case query::Query::Kind::kSimilarByDoc:
      if (meta_.doc_ids.find(q.doc_id) == meta_.doc_ids.end()) {
        return "query: unknown doc id " + std::to_string(q.doc_id);
      }
      break;
    case query::Query::Kind::kClusterSummary:
      if (q.cluster < 0 ||
          static_cast<std::size_t>(q.cluster) >= meta_.num_clusters) {
        return "query: cluster " + std::to_string(q.cluster) +
               " out of range (bundle has " + std::to_string(meta_.num_clusters) +
               " clusters)";
      }
      break;
  }
  return {};
}

void Server::fail_batch(std::vector<PendingQuery>& batch, const std::string& why) {
  for (auto& q : batch) {
    q.promise.set_exception(std::make_exception_ptr(InvalidArgument(why)));
  }
  batch.clear();
}

std::future<query::QueryResult> Server::submit(query::Query q) {
  const std::string why = validate(q);
  if (!why.empty()) {
    rejected_.fetch_add(1);
    std::promise<query::QueryResult> p;
    p.set_exception(std::make_exception_ptr(InvalidArgument(why)));
    return p.get_future();
  }
  auto key = query_key_bytes(q);
  const std::uint64_t digest = engine::fnv1a64(key.data(), key.size());
  if (auto hit = cache_.lookup(digest, key)) {
    std::promise<query::QueryResult> p;
    p.set_value(std::move(*hit));
    return p.get_future();
  }
  return scheduler_.submit(std::move(q), digest, std::move(key));
}

std::future<void> Server::reload(std::filesystem::path new_bundle) {
  ReloadRequest request;
  request.path = std::move(new_bundle);
  auto future = request.promise.get_future();
  if (!running_.load()) {
    request.promise.set_exception(
        std::make_exception_ptr(InvalidArgument(kShuttingDown)));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    reloads_.push_back(std::move(request));
  }
  scheduler_.wake();
  return future;
}

std::future<engine::DeltaReport> Server::ingest(std::filesystem::path docs_file,
                                                std::filesystem::path out_bundle) {
  IngestRequest request;
  request.docs = std::move(docs_file);
  request.out = std::move(out_bundle);
  auto future = request.promise.get_future();
  if (!running_.load()) {
    request.promise.set_exception(
        std::make_exception_ptr(InvalidArgument(kShuttingDown)));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    ingests_.push_back(std::move(request));
  }
  scheduler_.wake();
  return future;
}

void Server::stop() {
  scheduler_.stop();
}

void Server::stop_now() {
  cancel_.store(true);
  scheduler_.stop();
}

void Server::join() {
  if (world_thread_.joinable()) world_thread_.join();
  std::lock_guard<std::mutex> lock(meta_mutex_);
  if (run_error_ != nullptr && !joined_) {
    joined_ = true;
    std::rethrow_exception(run_error_);
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.sweeps = sweeps_.load();
  out.queries_swept = queries_swept_.load();
  out.rejected = rejected_.load();
  out.reloads = reload_count_.load();
  out.ingests = ingest_count_.load();
  out.generation = generation_.load();
  out.scheduler = scheduler_.stats();
  out.cache = cache_.stats();
  return out;
}

std::uint64_t Server::num_documents() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  return meta_.num_documents;
}

std::size_t Server::num_clusters() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  return meta_.num_clusters;
}

std::size_t Server::dimension() const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  return meta_.dimension;
}

void Server::refresh_metadata(ga::Context& ctx, query::Session& session) {
  const auto& local_ids = session.bundle().signatures.doc_ids;
  const auto all_ids =
      ctx.allgatherv(std::span<const std::uint64_t>(local_ids));
  if (ctx.rank() == 0) {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    meta_.num_documents = session.num_documents();
    meta_.dimension = session.dimension();
    meta_.num_clusters = session.num_clusters();
    meta_.doc_ids.clear();
    meta_.doc_ids.insert(all_ids.begin(), all_ids.end());
    generation_.store(session.generation());
  }
}

}  // namespace sva::serve
