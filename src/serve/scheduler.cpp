#include "sva/serve/scheduler.hpp"

#include <utility>

#include "sva/fault/fault.hpp"
#include "sva/util/error.hpp"

namespace sva::serve {

std::future<query::QueryResult> AdmissionScheduler::submit(query::Query q,
                                                           std::uint64_t digest,
                                                           std::vector<std::uint8_t> key) {
  fault::point(fault::sites::kServeAdmission);
  PendingQuery item;
  item.query = std::move(q);
  item.digest = digest;
  item.key = std::move(key);
  item.admitted = std::chrono::steady_clock::now();
  auto future = item.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      item.promise.set_exception(
          std::make_exception_ptr(InvalidArgument("server is shutting down")));
      return future;
    }
    ++stats_.submitted;
    queue_.push_back(std::move(item));
  }
  cv_.notify_all();
  return future;
}

std::vector<PendingQuery> AdmissionScheduler::pop_batch_locked() {
  const std::size_t take = std::min(queue_.size(), batch_max_);
  std::vector<PendingQuery> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++stats_.batches;
  stats_.max_batch = std::max(stats_.max_batch, static_cast<std::uint64_t>(take));
  return batch;
}

std::size_t AdmissionScheduler::fail_expired_locked() {
  if (admission_deadline_ <= std::chrono::milliseconds::zero()) return 0;
  const auto now = std::chrono::steady_clock::now();
  std::size_t failed = 0;
  // Admission order means expiry order: only a prefix can be expired.
  while (!queue_.empty() && now - queue_.front().admitted >= admission_deadline_) {
    queue_.front().promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
        "admission deadline of " + std::to_string(admission_deadline_.count()) +
        "ms exceeded before a sweep could run")));
    queue_.pop_front();
    ++failed;
  }
  stats_.expired += failed;
  return failed;
}

std::size_t AdmissionScheduler::fail_expired() {
  std::lock_guard<std::mutex> lock(mutex_);
  return fail_expired_locked();
}

std::vector<PendingQuery> AdmissionScheduler::take_batch(
    const std::function<bool()>& interrupt) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    fail_expired_locked();
    if (interrupt && interrupt()) return {};
    if (stopped_) {
      if (queue_.empty()) return {};
      ++stats_.drain_flushes;
      return pop_batch_locked();
    }
    if (queue_.size() >= batch_max_) {
      ++stats_.size_flushes;
      return pop_batch_locked();
    }
    if (!queue_.empty()) {
      const auto flush_at = queue_.front().admitted + deadline_;
      if (std::chrono::steady_clock::now() >= flush_at) {
        ++stats_.deadline_flushes;
        return pop_batch_locked();
      }
      cv_.wait_until(lock, flush_at);
    } else {
      cv_.wait(lock);
    }
  }
}

void AdmissionScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
}

void AdmissionScheduler::wake() { cv_.notify_all(); }

bool AdmissionScheduler::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopped_;
}

std::size_t AdmissionScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

SchedulerStats AdmissionScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sva::serve
