#include "sva/serve/cache.hpp"

#include <utility>

namespace sva::serve {

std::optional<query::QueryResult> ResultCache::lookup(
    std::uint64_t digest, const std::vector<std::uint8_t>& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [first, last] = index_.equal_range(digest);
  for (auto it = first; it != last; ++it) {
    if (it->second->key != key) continue;  // digest collision: not a hit
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return it->second->result;
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::insert(std::uint64_t digest, std::vector<std::uint8_t> key,
                         query::QueryResult result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [first, last] = index_.equal_range(digest);
  for (auto it = first; it != last; ++it) {
    if (it->second->key != key) continue;
    it->second->result = std::move(result);  // refresh an existing entry
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({digest, std::move(key), std::move(result)});
  index_.emplace(digest, lru_.begin());
  while (lru_.size() > capacity_) {
    const auto& victim = lru_.back();
    const auto [vfirst, vlast] = index_.equal_range(victim.digest);
    for (auto it = vfirst; it != vlast; ++it) {
      if (it->second == std::prev(lru_.end())) {
        index_.erase(it);
        break;
      }
    }
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

void ResultCache::invalidate_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.invalidations += lru_.size();
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace sva::serve
