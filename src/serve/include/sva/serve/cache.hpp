// Per-session result cache of the serving daemon.
//
// Keyed on the FNV-1a digest of a query's canonical byte serialization
// (protocol.hpp) — the same digest machinery the determinism ledger uses
// — with the full key bytes stored alongside each entry so a digest
// collision degrades to a miss, never to a wrong answer.  Entries are
// evicted LRU once `capacity` is exceeded; invalidate_all() flushes
// everything when the served bundle is swapped (a cached answer is only
// valid against the model generation that produced it).
//
// Thread-safe: ingress threads look up at admission while the serve loop
// inserts after each sweep.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sva/query/session.hpp"

namespace sva::serve {

/// Hit/miss/evict counters, snapshot under the cache lock.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  ///< entries dropped by bundle swaps
  std::uint64_t entries = 0;        ///< current resident entries
};

class ResultCache {
 public:
  /// `capacity` = max resident entries; 0 disables caching entirely
  /// (every lookup is a miss, inserts are dropped).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result for (digest, key) or nullopt; counts a hit
  /// or miss and refreshes the entry's LRU position on a hit.
  [[nodiscard]] std::optional<query::QueryResult> lookup(
      std::uint64_t digest, const std::vector<std::uint8_t>& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entries beyond capacity.
  void insert(std::uint64_t digest, std::vector<std::uint8_t> key,
              query::QueryResult result);

  /// Flushes every entry (bundle swap): counts them as invalidations.
  void invalidate_all();

  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t digest = 0;
    std::vector<std::uint8_t> key;
    query::QueryResult result;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// LRU order: front = most recent.  The map indexes list iterators;
  /// digest collisions chain through the multimap.
  std::list<Entry> lru_;
  std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace sva::serve
