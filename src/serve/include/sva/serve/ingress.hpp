// Ingress transports of the serving daemon: how protocol lines reach the
// Server and responses reach the client.
//
//   * SocketIngress — the primary transport: a Unix domain stream socket.
//     Each accepted connection gets a reader thread; every non-blank
//     request line yields exactly one response line, in order, so clients
//     can pipeline.  Concurrency across connections is what the admission
//     scheduler coalesces into sweeps.
//
//   * FileQueueIngress — the fallback for environments without socket
//     access (or for batch drops): a spool directory polled for `*.req`
//     files; each is answered with a same-stem `.resp` file written
//     atomically (temp + rename), then the request is removed.
//
// Both transports share process_request_line(), so the grammar and the
// response shapes cannot drift between them.
#pragma once

#include <atomic>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sva/serve/server.hpp"

namespace sva::serve {

/// Executes one protocol line against `server` and returns the response
/// line (without a trailing newline).  Returns an empty string for a
/// blank/comment line (no response is owed).  Sets `*shutdown` when the
/// line asked the daemon to stop.  Blocks until the answer is known —
/// callers that want concurrency issue this from several threads.
std::string process_request_line(Server& server, std::string_view line, bool* shutdown);

/// Renders the daemon's counters as a one-line `ok stats ...` response.
std::string format_stats(const ServerStats& stats);

/// Unix-domain-socket ingress.  start() binds and listens; stop() wakes
/// the accept loop, closes every live connection and joins the threads.
class SocketIngress {
 public:
  SocketIngress(Server& server, std::filesystem::path socket_path);
  ~SocketIngress();

  SocketIngress(const SocketIngress&) = delete;
  SocketIngress& operator=(const SocketIngress&) = delete;

  /// Binds + listens; throws Error when the address cannot be bound.
  void start();
  /// Stops accepting, closes live connections, joins all threads, and
  /// unlinks the socket path.
  void stop();

  /// True once a `shutdown` request line has been processed.
  [[nodiscard]] bool shutdown_requested() const { return shutdown_.load(); }
  [[nodiscard]] const std::filesystem::path& path() const { return socket_path_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Server& server_;
  const std::filesystem::path socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;
  std::mutex clients_mutex_;
  std::vector<int> client_fds_;
  std::vector<std::thread> client_threads_;
};

/// File-queue ingress: polls `spool_dir` for `*.req` files.  A request
/// file holds protocol lines; the daemon claims it by rename (so several
/// daemons can share a spool), answers every line into `<stem>.resp`
/// (atomic temp + rename), and removes the claimed request.
class FileQueueIngress {
 public:
  FileQueueIngress(Server& server, std::filesystem::path spool_dir,
                   std::chrono::milliseconds poll_interval = std::chrono::milliseconds(20));
  ~FileQueueIngress();

  FileQueueIngress(const FileQueueIngress&) = delete;
  FileQueueIngress& operator=(const FileQueueIngress&) = delete;

  /// Creates the spool directory (if needed) and starts the poll thread.
  void start();
  /// Stops polling and joins.  In-flight request files are finished.
  void stop();

  [[nodiscard]] bool shutdown_requested() const { return shutdown_.load(); }

 private:
  void poll_loop();
  void handle_request_file(const std::filesystem::path& req);

  Server& server_;
  const std::filesystem::path spool_dir_;
  const std::chrono::milliseconds poll_interval_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  std::thread poll_thread_;
};

/// Client helper: connects to `socket_path`, sends every line, and
/// returns one response line per non-blank request line.  Throws Error on
/// connect/IO failure or a short response stream.
std::vector<std::string> client_roundtrip(const std::filesystem::path& socket_path,
                                          const std::vector<std::string>& lines);

}  // namespace sva::serve
