// Ingress transports of the serving daemon: how protocol lines reach the
// Server and responses reach the client.
//
//   * SocketIngress — the primary transport: a Unix domain stream socket.
//     Each accepted connection gets a reader thread; every non-blank
//     request line yields exactly one response line, in order, so clients
//     can pipeline.  Concurrency across connections is what the admission
//     scheduler coalesces into sweeps.
//
//   * FileQueueIngress — the fallback for environments without socket
//     access (or for batch drops): a spool directory polled for `*.req`
//     files; each is answered with a same-stem `.resp` file written
//     atomically (temp + rename), then the request is removed.
//
// Both transports share process_request_line(), so the grammar and the
// response shapes cannot drift between them.
//
// Failure plane: socket connections that sit silent past the idle
// timeout are closed (a wedged client cannot pin a reader thread
// forever); spool files claimed by a poller that died are swept back to
// `*.req` so another poller answers them; and client_roundtrip retries
// idempotent request batches across a daemon whose serving world is
// mid-respawn, announcing each retry with a `# retry <n>` comment line
// the daemon counts into its stats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sva/serve/server.hpp"

namespace sva::serve {

/// Executes one protocol line against `server` and returns the response
/// line (without a trailing newline).  Returns an empty string for a
/// blank/comment line (no response is owed).  Sets `*shutdown` when the
/// line asked the daemon to stop.  Blocks until the answer is known —
/// callers that want concurrency issue this from several threads.
std::string process_request_line(Server& server, std::string_view line, bool* shutdown);

/// Renders the daemon's counters as a one-line `ok stats ...` response.
std::string format_stats(const ServerStats& stats);

/// Unix-domain-socket ingress.  start() binds and listens; stop() wakes
/// the accept loop, closes every live connection and joins the threads.
class SocketIngress {
 public:
  /// `idle_timeout` bounds how long a connection may sit silent between
  /// request bytes before the daemon closes it — a client that wedged
  /// mid-request cannot pin a reader thread forever.  Zero disables the
  /// timeout.
  SocketIngress(Server& server, std::filesystem::path socket_path,
                std::chrono::milliseconds idle_timeout = std::chrono::seconds(30));
  ~SocketIngress();

  SocketIngress(const SocketIngress&) = delete;
  SocketIngress& operator=(const SocketIngress&) = delete;

  /// Binds + listens; throws Error when the address cannot be bound.
  void start();
  /// Stops accepting, closes live connections, joins all threads, and
  /// unlinks the socket path.
  void stop();

  /// True once a `shutdown` request line has been processed.
  [[nodiscard]] bool shutdown_requested() const { return shutdown_.load(); }
  [[nodiscard]] const std::filesystem::path& path() const { return socket_path_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Server& server_;
  const std::filesystem::path socket_path_;
  const std::chrono::milliseconds idle_timeout_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;
  std::mutex clients_mutex_;
  std::vector<int> client_fds_;
  std::vector<std::thread> client_threads_;
};

/// File-queue ingress: polls `spool_dir` for `*.req` files.  A request
/// file holds protocol lines; the daemon claims it by rename (so several
/// daemons can share a spool), answers every line into `<stem>.resp`
/// (atomic temp + rename), and removes the claimed request.
class FileQueueIngress {
 public:
  FileQueueIngress(Server& server, std::filesystem::path spool_dir,
                   std::chrono::milliseconds poll_interval = std::chrono::milliseconds(20));
  ~FileQueueIngress();

  FileQueueIngress(const FileQueueIngress&) = delete;
  FileQueueIngress& operator=(const FileQueueIngress&) = delete;

  /// Creates the spool directory (if needed) and starts the poll thread.
  void start();
  /// Stops polling and joins.  In-flight request files are finished.
  void stop();

  /// Renames `*.req.claimed.<pid>` files whose claiming process is dead
  /// back to `*.req` so a live poller answers them instead of leaving
  /// the client waiting on a response that will never come.  Runs at
  /// start() and periodically from the poll loop; returns how many
  /// claims were swept back.
  std::size_t recover_stale_claims();

  [[nodiscard]] bool shutdown_requested() const { return shutdown_.load(); }

 private:
  void poll_loop();
  void handle_request_file(const std::filesystem::path& req);

  Server& server_;
  const std::filesystem::path spool_dir_;
  const std::chrono::milliseconds poll_interval_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  std::thread poll_thread_;
};

/// How client_roundtrip rides out a daemon whose serving world is
/// mid-respawn: retry the whole batch, doubling the backoff per attempt.
struct ClientRetryPolicy {
  int attempts = 5;                      ///< total tries (1 = never retry)
  std::chrono::milliseconds backoff{100};      ///< before the first retry...
  std::chrono::milliseconds backoff_max{1000}; ///< ...doubling up to this cap
};

/// Client helper: connects to `socket_path`, sends every line, and
/// returns one response line per non-blank request line.  Throws Error on
/// connect/IO failure or a short response stream.
///
/// When every line is retry-safe (blank/query/ping/stats — idempotent,
/// so a duplicate execution is harmless), a transport failure or a
/// "world failure" response is retried under `retry`: the batch is
/// re-sent prefixed with a `# retry <n>` marker the daemon counts.
/// Batches carrying control verbs (reload/ingest/shutdown) never retry —
/// the last error (or the failed responses) surfaces to the caller.
std::vector<std::string> client_roundtrip(const std::filesystem::path& socket_path,
                                          const std::vector<std::string>& lines,
                                          const ClientRetryPolicy& retry = {});

}  // namespace sva::serve
