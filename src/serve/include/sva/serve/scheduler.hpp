// Admission scheduler of the serving daemon: the piece that turns
// concurrent single queries into Session::run_batch sweeps.
//
// Ingress threads submit() individual queries; the serve loop's rank 0
// blocks in take_batch(), which releases a batch when either
//
//   * the pending queue reaches `batch_max` (size trigger: bursty load
//     rides the batched plane at full width), or
//   * `deadline` has elapsed since the OLDEST pending admission
//     (deadline trigger: a lone query never waits longer than the
//     coalescing window).
//
// The scheduler never reorders: batches are admission-ordered prefixes
// of the queue, so a client's pipelined queries complete in order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <vector>

#include "sva/query/session.hpp"
#include "sva/util/error.hpp"

namespace sva::serve {

/// One admitted query waiting for (or riding) a sweep.
struct PendingQuery {
  query::Query query;
  std::uint64_t digest = 0;             ///< protocol::query_digest
  std::vector<std::uint8_t> key;        ///< canonical key bytes (cache insert)
  std::promise<query::QueryResult> promise;
  std::chrono::steady_clock::time_point admitted{};
};

/// A queued request outlived its admission deadline (typically because
/// the serving world was down across repeated respawn attempts) and was
/// failed rather than left waiting forever.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// Counter snapshot; taken under the scheduler lock.
struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t batches = 0;           ///< batches released to the serve loop
  std::uint64_t size_flushes = 0;      ///< released because the queue hit batch_max
  std::uint64_t deadline_flushes = 0;  ///< released because the window expired
  std::uint64_t drain_flushes = 0;     ///< released while draining for shutdown
  std::uint64_t max_batch = 0;         ///< largest batch released
  std::uint64_t expired = 0;           ///< failed by the admission deadline
};

class AdmissionScheduler {
 public:
  /// `admission_deadline` bounds how long a query may sit in the queue
  /// before it fails with DeadlineExceeded: take_batch() prunes expired
  /// entries before releasing a batch, and the server's supervisor prunes
  /// during respawn backoff (when nothing is calling take_batch).  Zero
  /// disables expiry.
  AdmissionScheduler(std::size_t batch_max, std::chrono::microseconds deadline,
                     std::chrono::milliseconds admission_deadline =
                         std::chrono::milliseconds::zero())
      : batch_max_(batch_max > 0 ? batch_max : 1),
        deadline_(deadline),
        admission_deadline_(admission_deadline) {}

  /// Admits one query; returns the future its sweep will complete.
  /// After stop(), admission fails the promise immediately with
  /// InvalidArgument("server is shutting down").
  std::future<query::QueryResult> submit(query::Query q, std::uint64_t digest,
                                         std::vector<std::uint8_t> key);

  /// Blocks until a batch is ready and returns it (admission order).
  /// Returns an empty vector when `interrupt` reports true (an external
  /// command needs the serve loop) or when the scheduler is stopped and
  /// fully drained — the caller distinguishes via stopped()/pending().
  std::vector<PendingQuery> take_batch(const std::function<bool()>& interrupt = {});

  /// Stops admission and wakes take_batch so it can drain what remains.
  void stop();

  /// Wakes a blocked take_batch (external condition changed).
  void wake();

  /// Fails every queued query older than the admission deadline with
  /// DeadlineExceeded; returns how many were failed.  No-op when the
  /// deadline is disabled.
  std::size_t fail_expired();

  [[nodiscard]] bool stopped() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] SchedulerStats stats() const;

 private:
  /// Pops up to batch_max_ items (caller holds the lock).
  std::vector<PendingQuery> pop_batch_locked();
  /// fail_expired() body (caller holds the lock).
  std::size_t fail_expired_locked();

  const std::size_t batch_max_;
  const std::chrono::microseconds deadline_;
  const std::chrono::milliseconds admission_deadline_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingQuery> queue_;
  bool stopped_ = false;
  SchedulerStats stats_;
};

}  // namespace sva::serve
