// The serving daemon's core: one long-lived SPMD world over one opened
// Session, fed by the admission scheduler, fronted by the result cache.
//
// Lifecycle:
//
//   serve::Server server(bundle, options);
//   server.start();                    // opens the Session, blocks until ready
//   auto f = server.submit(query);     // from any thread
//   f.get();                           // completes when its sweep lands
//   server.stop();                     // drain queued sweeps, then exit
//   server.join();                     // rethrows a fatal serve-loop error
//
// Internally rank 0 of the world owns the ingress side: it blocks in
// AdmissionScheduler::take_batch, encodes each released batch (or
// control command) and broadcasts it to the other ranks, so every rank
// executes the identical Session::run_batch sweep — the daemon pays
// Session::open once and every burst rides the batched plane.  The
// result cache is consulted at admission (a hit never enters the
// scheduler) and filled after each sweep.
//
// Queries are validated at admission against the served bundle's
// metadata (dimension, cluster count, the full doc-id set), so a
// malformed query fails its own future instead of poisoning a sweep.
//
// stop() drains: queued queries still complete.  stop_now() raises the
// sweep cancel flag — an in-flight sweep is abandoned at its next phase
// boundary (query::BatchControl) and every unanswered query fails with
// "server is shutting down".
//
// The world thread is a supervisor, not a single spmd_run: when the
// serving world dies abnormally (a rank SIGKILLed, a transport abort, an
// injected fault), the supervisor fails every future the dead world owned
// with WorldFailure — a client is never left hanging — then respawns a
// fresh world over the last-good bundle (serially pre-validated, the same
// idiom the reload path uses) with bounded exponential backoff, and
// resumes serving.  Queries queued during the outage ride over the
// respawn; the admission deadline bounds how long they may wait.  The
// bundle is unchanged across a respawn, so post-respawn answers are
// byte-identical to the never-failed path (and the result cache stays
// valid).  A world that has never served (first open fails) or that
// exhausts max_respawn_attempts consecutive failures becomes the fatal
// error join() rethrows.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "sva/engine/delta.hpp"
#include "sva/ga/comm_model.hpp"
#include "sva/serve/cache.hpp"
#include "sva/serve/scheduler.hpp"

namespace sva::serve {

struct ServeOptions {
  /// SPMD ranks the world serves with.
  int procs = 2;
  /// Sweep released as soon as this many queries are pending.
  std::size_t batch_max = 16;
  /// ...or once the oldest pending query has waited this long.
  std::chrono::microseconds batch_deadline{2000};
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t cache_capacity = 1024;
  /// Communication model for the serving world.
  ga::CommModel model{};
  /// Transport backend for the serving world.  Rank 0 always runs in the
  /// daemon's own address space (it drives the scheduler and fulfils the
  /// futures), so every backend serves identically; kProcess isolates the
  /// other ranks in forked children and kSocket connects them over TCP
  /// (loopback by default, other hosts via socket_rendezvous).
  ga::Backend backend = ga::Backend::kThread;
  /// kSocket only: rendezvous address for multi-node serving worlds
  /// (empty = ephemeral loopback), and this daemon's node slot.
  std::string socket_rendezvous;
  int socket_node = 0;
  int socket_nodes = 1;
  /// Supervisor: respawn the world after an abnormal death.  Off, the
  /// first world death is fatal (join() rethrows it) — the pre-PR-9
  /// behavior.
  bool respawn = true;
  /// Give up (fatally) after this many consecutive failed respawn
  /// attempts; the counter resets once a respawned world serves again.
  int max_respawn_attempts = 5;
  /// Backoff before the first respawn attempt; doubles per consecutive
  /// failure up to respawn_backoff_max.
  std::chrono::milliseconds respawn_backoff{50};
  std::chrono::milliseconds respawn_backoff_max{2000};
  /// A queued query that has waited this long fails with DeadlineExceeded
  /// instead of waiting forever (the bound that matters when queries pile
  /// up across repeated respawn attempts).  Zero disables expiry.
  std::chrono::milliseconds admission_deadline{30000};
};

/// The serving world died (rank killed, transport abort, injected fault)
/// with this request in flight.  Queries are idempotent: a client may
/// re-issue once the supervisor has respawned the world and the answer
/// will be byte-identical to the never-failed path.  The what() text
/// always starts with protocol's kWorldFailureMark ("world failure: ").
class WorldFailure : public Error {
 public:
  explicit WorldFailure(const std::string& what) : Error(what) {}
};

/// Failure-plane counters (the `stats` verb surfaces all of these).
struct FailureStats {
  std::uint64_t world_failures = 0;   ///< abnormal world deaths observed
  std::uint64_t respawns = 0;         ///< worlds respawned by the supervisor
  std::uint64_t in_flight_failed = 0; ///< futures failed with WorldFailure
  std::uint64_t client_retries = 0;   ///< "# retry" markers seen on ingress
  std::string last_failure;           ///< reason of the most recent world death
};

/// Counter snapshot across the daemon's moving parts.
struct ServerStats {
  std::string backend;               ///< serving world's transport backend
  std::uint64_t world_size = 0;      ///< SPMD ranks the world serves with
  std::uint64_t sweeps = 0;          ///< run_batch sweeps executed
  std::uint64_t queries_swept = 0;   ///< queries answered by sweeps
  std::uint64_t rejected = 0;        ///< failed admission validation
  std::uint64_t reloads = 0;         ///< completed bundle swaps
  std::uint64_t ingests = 0;         ///< completed delta ingests
  std::uint64_t generation = 0;      ///< served bundle's generation counter
  SchedulerStats scheduler;
  CacheStats cache;
  FailureStats failures;
};

class Server {
 public:
  Server(std::filesystem::path bundle_path, ServeOptions options);
  /// Stops (now) and joins; a pending fatal error is swallowed here —
  /// call join() first to observe it.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the serving world and blocks until the Session is open and
  /// admission metadata is ready; rethrows the open failure.
  void start();

  /// Admits one query: answered from the cache immediately on a hit,
  /// otherwise scheduled into the next sweep.  The future fails with
  /// InvalidArgument on a query the served bundle cannot answer.
  std::future<query::QueryResult> submit(query::Query q);

  /// Swaps the served bundle (collectively re-opens the Session) and
  /// invalidates the result cache.  The future fails if the new bundle
  /// does not validate; the old bundle keeps serving in that case.
  std::future<void> reload(std::filesystem::path new_bundle);

  /// Delta-ingests the newline-delimited documents of `docs_file` into
  /// the currently served bundle: the world runs engine::ingest_delta
  /// collectively, writes the next generation to `out_bundle` and swaps
  /// the live Session to it through the same pre-validated path reload
  /// uses (cache invalidated, metadata re-gathered).  The future carries
  /// the drift report; it fails — and the old generation keeps serving —
  /// when the docs file is unreadable or the served bundle cannot be
  /// extended (no frozen model/vocabulary/config).
  std::future<engine::DeltaReport> ingest(std::filesystem::path docs_file,
                                          std::filesystem::path out_bundle);

  /// Graceful shutdown: stops admission, drains queued sweeps, exits.
  void stop();

  /// Urgent shutdown: additionally abandons the in-flight sweep at its
  /// next phase boundary and fails unanswered queries.
  void stop_now();

  /// Waits for the serve loop to exit; rethrows its fatal error, if any.
  void join();

  /// Ingress transports report a client's "# retry" marker here so the
  /// stats verb can surface how many retries the respawn window caused.
  void note_client_retry() { client_retries_.fetch_add(1); }

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] ServerStats stats() const;

  // Served-bundle metadata (admission validation reads the same values).
  [[nodiscard]] std::uint64_t num_documents() const;
  [[nodiscard]] std::size_t num_clusters() const;
  [[nodiscard]] std::size_t dimension() const;

 private:
  struct Metadata {
    std::uint64_t num_documents = 0;
    std::size_t dimension = 0;
    std::size_t num_clusters = 0;
    std::unordered_set<std::uint64_t> doc_ids;
  };
  struct ReloadRequest {
    std::filesystem::path path;
    std::promise<void> promise;
  };
  struct IngestRequest {
    std::filesystem::path docs;
    std::filesystem::path out;
    std::promise<engine::DeltaReport> promise;
  };

  /// The world thread's body: runs serving worlds in a loop, turning each
  /// abnormal death into failed futures + a backed-off respawn over the
  /// last-good bundle, until a clean exit or a fatal give-up.
  void supervise();
  /// The SPMD body every rank runs (rank 0 drives the scheduler).
  void serve_world(ga::Context& ctx);
  /// Collective: re-gathers the served bundle's admission metadata
  /// (rank 0 publishes it under meta_mutex_).
  void refresh_metadata(ga::Context& ctx, query::Session& session);
  /// Rank 0: blocks for the next command; returns the encoded blob.  A
  /// sweep command parks its batch in inflight_ so the supervisor can
  /// fail it if the world dies mid-sweep.  `served_path` is the bundle
  /// the world currently serves (the delta base an ingest command
  /// extends).
  std::vector<std::uint8_t> next_command(const std::filesystem::path& served_path);
  /// Rank 0: validates `q` against the current metadata; empty string
  /// when admissible.
  std::string validate(const query::Query& q) const;
  /// Supervisor: fails the in-flight batch and any in-flight
  /// reload/ingest with WorldFailure("world failure: " + reason).
  void fail_world_owned(const std::string& reason);
  /// Fails every query in `batch` with `why`.
  static void fail_batch(std::vector<PendingQuery>& batch, const std::string& why);

  const std::filesystem::path bundle_path_;
  const ServeOptions options_;

  AdmissionScheduler scheduler_;
  ResultCache cache_;

  mutable std::mutex meta_mutex_;
  Metadata meta_;

  std::mutex control_mutex_;
  std::deque<ReloadRequest> reloads_;
  std::deque<IngestRequest> ingests_;
  /// The bundle the live world serves; reload/ingest move it (rank 0) and
  /// the supervisor re-opens it on respawn.  Guarded by control_mutex_.
  std::filesystem::path served_path_;
  /// The reload/ingest whose collective phase is in flight (rank 0 /
  /// exit path).
  std::optional<ReloadRequest> current_reload_;
  std::optional<IngestRequest> current_ingest_;
  /// The batch the current sweep carries.  Touched only by rank 0 inside
  /// a world and by the supervisor between worlds — rank 0 runs on the
  /// supervisor's own thread (both backends), so no lock is needed.
  std::vector<PendingQuery> inflight_;

  std::atomic<bool> cancel_{false};
  std::atomic<bool> running_{false};
  /// Set by rank 0 once a world's Session is open and serving; tells the
  /// supervisor whether a death was a serving failure (respawn counter
  /// resets) or a failed respawn attempt (counter escalates).
  std::atomic<bool> world_healthy_{false};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> queries_swept_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> reload_count_{0};
  std::atomic<std::uint64_t> ingest_count_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> world_failures_{0};
  std::atomic<std::uint64_t> respawns_{0};
  std::atomic<std::uint64_t> in_flight_failed_{0};
  std::atomic<std::uint64_t> client_retries_{0};
  std::string last_failure_;  ///< guarded by meta_mutex_

  std::thread world_thread_;
  std::promise<void> ready_;
  bool ready_signalled_ = false;  ///< guarded by meta_mutex_
  std::exception_ptr run_error_;  ///< guarded by meta_mutex_
  bool joined_ = false;
};

}  // namespace sva::serve
