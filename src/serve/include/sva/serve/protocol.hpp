// Newline-delimited request protocol of the serving daemon, shared with
// sva_query's --batch files so one grammar serves both planes.
//
// Version header (optional on any plane, checked when present):
//
//   sva-protocol <version>
//
// A matching header parses as a blank line; a mismatched one fails with
// an explicit "protocol version mismatch" diagnostic rather than the
// generic unknown-verb error, so peers from a different build stop with
// a message that names both versions.  The daemon also greets every
// socket connection with `ok sva-protocol <version>` before reading
// requests; client_roundtrip() validates that greeting.
//
// Query lines (strict: unknown verbs, missing fields and trailing
// garbage are all malformed — nothing is silently ignored):
//
//   similar <doc_id> <k>
//   summary <cluster> [representatives]
//
// Control lines (daemon ingress only):
//
//   ping                 liveness probe
//   stats                scheduler/cache counter snapshot
//   reload <path>        swap the served bundle (invalidates the cache)
//   ingest <docs> <out>  delta-ingest the newline-delimited documents of
//                        file <docs> into the served bundle, write the
//                        next generation to <out> and swap to it
//   shutdown             drain and stop the daemon
//
// Blank lines and lines whose first non-space character is '#' are
// skipped.  Responses are single lines: "ok <payload>" or "error <why>";
// similarity hits render as doc:similarity pairs with the exact double
// bits in hex so a cached reply is textually identical to an uncached
// one iff the answers are bit-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sva/query/session.hpp"
#include "sva/util/bytes.hpp"

namespace sva::serve {

/// Wire protocol version.  Bump on any change a peer from an older build
/// could misread (new verbs, response shape, greeting format); the
/// `sva-protocol` header and the connection greeting both carry it.
/// Version 2 added the `ingest` control verb and the `generation=` /
/// `ingests=` fields of the stats response.  Version 3 added the failure
/// counters of the stats response (respawns=, world_failures=,
/// in_flight_failed=, deadline_expired=, client_retries=, last_failure=)
/// and the "world failure:" error mark clients key their retries on.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// Prefix of every error string caused by the serving world dying with
/// the request in flight (the daemon renders it as
/// "error world failure: <reason>").  Query verbs are idempotent, so a
/// client seeing this mark may re-issue once the supervisor has respawned
/// the world; client_roundtrip() does exactly that.
inline constexpr std::string_view kWorldFailureMark = "world failure: ";

/// True when re-issuing `line` cannot change daemon state: blank/comment
/// lines, queries, ping and stats.  reload/ingest/shutdown mutate the
/// daemon and are never retried automatically; malformed lines are not
/// retry-safe either (the error is deterministic, retrying is noise).
bool retry_safe_line(std::string_view line);

/// The greeting line the daemon writes on every accepted connection:
/// "ok sva-protocol <kProtocolVersion>".
std::string protocol_greeting();

/// Validates a daemon greeting line against this build's version.
/// Throws sva::Error naming both versions on mismatch (or a daemon too
/// old to greet at all).
void check_peer_greeting(std::string_view line);

/// A parsed protocol line.
struct Request {
  enum class Kind { kBlank, kQuery, kPing, kStats, kReload, kIngest, kShutdown };
  Kind kind = Kind::kBlank;
  query::Query query;           ///< kQuery
  std::string reload_path;      ///< kReload
  std::string ingest_docs;      ///< kIngest: newline-delimited documents file
  std::string ingest_out;       ///< kIngest: next-generation bundle path
};

/// Parses one query line (`similar`/`summary` grammar only — the shape
/// sva_query batch files accept).  Returns nullopt with `error` set on a
/// malformed line; a blank/comment line parses as kBlank.
std::optional<Request> parse_query_line(std::string_view line, std::string& error);

/// Parses one ingress line: the query grammar plus the control verbs.
std::optional<Request> parse_request_line(std::string_view line, std::string& error);

/// Appends the canonical byte serialization of one query — the shape
/// shared by the result-cache key and the daemon's rank-0 → world
/// command broadcast.
void encode_query(ByteWriter& w, const query::Query& q);

/// Inverse of encode_query; throws FormatError on malformed bytes.
query::Query decode_query(ByteReader& in);

/// Canonical byte serialization of a query — the result-cache key.  Two
/// queries serialize identically iff they request the same answer.
std::vector<std::uint8_t> query_key_bytes(const query::Query& q);

/// FNV-1a digest of query_key_bytes (the cache's hash key).
std::uint64_t query_digest(const query::Query& q);

/// Renders one result as a single deterministic response line ("ok ...").
/// Doubles are rendered as exact bit patterns, so two renderings compare
/// equal iff the results are bit-identical.
std::string format_result(const query::QueryResult& result);

/// Renders an error response line.
std::string format_error(std::string_view what);

}  // namespace sva::serve
