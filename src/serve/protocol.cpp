#include "sva/serve/protocol.hpp"

#include <bit>
#include <sstream>

#include "sva/engine/digest.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"
#include "sva/util/parse.hpp"

namespace sva::serve {

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::optional<Request> fail(std::string& error, std::string why) {
  error = std::move(why);
  return std::nullopt;
}

std::optional<Request> parse_tokens(const std::vector<std::string>& tokens,
                                    bool allow_control, std::string& error) {
  Request req;
  if (tokens.empty() || tokens[0][0] == '#') {
    req.kind = Request::Kind::kBlank;
    return req;
  }
  const std::string& verb = tokens[0];

  if (verb == "sva-protocol") {
    // Version header, legal on every plane.  A match is a no-op line; a
    // mismatch must name both versions — the whole point is that a peer
    // from another build stops with a diagnostic, not a grammar error.
    if (tokens.size() != 2) return fail(error, "expected 'sva-protocol <version>'");
    const auto v = parse_u64(tokens[1]);
    if (!v) return fail(error, "bad protocol version '" + tokens[1] + "'");
    if (*v != kProtocolVersion) {
      return fail(error, "protocol version mismatch: peer speaks sva-protocol " +
                             tokens[1] + ", this build speaks sva-protocol " +
                             std::to_string(kProtocolVersion));
    }
    req.kind = Request::Kind::kBlank;
    return req;
  }
  if (verb == "similar") {
    // Strict arity: exactly `similar <doc_id> <k>`; trailing garbage on a
    // line must fail loudly, not silently drop.
    if (tokens.size() != 3) return fail(error, "expected 'similar <doc_id> <k>'");
    const auto doc = parse_u64(tokens[1]);
    const auto k = parse_u64(tokens[2]);
    if (!doc) return fail(error, "bad doc id '" + tokens[1] + "'");
    if (!k || *k == 0) return fail(error, "bad top-k '" + tokens[2] + "'");
    req.kind = Request::Kind::kQuery;
    req.query = query::Query::similar_doc(*doc, static_cast<std::size_t>(*k));
    return req;
  }
  if (verb == "summary") {
    if (tokens.size() != 2 && tokens.size() != 3) {
      return fail(error, "expected 'summary <cluster> [reps]'");
    }
    const auto cluster = parse_u64(tokens[1]);
    if (!cluster || *cluster > static_cast<std::uint64_t>(INT32_MAX)) {
      return fail(error, "bad cluster id '" + tokens[1] + "'");
    }
    std::uint64_t reps = 5;
    if (tokens.size() == 3) {
      const auto parsed = parse_u64(tokens[2]);
      if (!parsed || *parsed == 0) {
        return fail(error, "bad representatives count '" + tokens[2] + "'");
      }
      reps = *parsed;
    }
    req.kind = Request::Kind::kQuery;
    req.query = query::Query::cluster_summary(static_cast<int>(*cluster),
                                              static_cast<std::size_t>(reps));
    return req;
  }

  if (allow_control) {
    if (verb == "ping" && tokens.size() == 1) {
      req.kind = Request::Kind::kPing;
      return req;
    }
    if (verb == "stats" && tokens.size() == 1) {
      req.kind = Request::Kind::kStats;
      return req;
    }
    if (verb == "shutdown" && tokens.size() == 1) {
      req.kind = Request::Kind::kShutdown;
      return req;
    }
    if (verb == "reload") {
      if (tokens.size() != 2) return fail(error, "expected 'reload <bundle-path>'");
      req.kind = Request::Kind::kReload;
      req.reload_path = tokens[1];
      return req;
    }
    if (verb == "ingest") {
      if (tokens.size() != 3) {
        return fail(error, "expected 'ingest <docs-file> <out-bundle>'");
      }
      req.kind = Request::Kind::kIngest;
      req.ingest_docs = tokens[1];
      req.ingest_out = tokens[2];
      return req;
    }
  }
  return fail(error, "unknown query verb '" + verb + "'");
}

/// Exact double bit pattern in hex — cached and uncached replies compare
/// textually equal iff the answers are bit-identical.
void append_f64_bits(std::string& out, double v) {
  static const char* hex = "0123456789abcdef";
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += hex[(bits >> shift) & 0xF];
  }
}

}  // namespace

std::string protocol_greeting() {
  return "ok sva-protocol " + std::to_string(kProtocolVersion);
}

void check_peer_greeting(std::string_view line) {
  if (line == protocol_greeting()) return;
  if (line.rfind("ok sva-protocol ", 0) == 0) {
    throw Error("daemon protocol version mismatch: daemon speaks sva-protocol " +
                std::string(line.substr(sizeof("ok sva-protocol ") - 1)) +
                ", this client speaks sva-protocol " +
                std::to_string(kProtocolVersion));
  }
  throw Error("daemon sent no protocol greeting (pre-versioning build?): got '" +
              std::string(line) + "'");
}

std::optional<Request> parse_query_line(std::string_view line, std::string& error) {
  return parse_tokens(tokenize(line), /*allow_control=*/false, error);
}

std::optional<Request> parse_request_line(std::string_view line, std::string& error) {
  return parse_tokens(tokenize(line), /*allow_control=*/true, error);
}

void encode_query(ByteWriter& w, const query::Query& q) {
  w.u64(static_cast<std::uint64_t>(q.kind));
  w.u64(q.k);
  switch (q.kind) {
    case query::Query::Kind::kSimilarByProbe:
      w.u64(q.probe.size());
      for (const double v : q.probe) w.f64(v);
      break;
    case query::Query::Kind::kSimilarByDoc:
      w.u64(q.doc_id);
      break;
    case query::Query::Kind::kClusterSummary:
      w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(q.cluster)));
      break;
  }
}

query::Query decode_query(ByteReader& in) {
  query::Query q;
  const std::uint64_t kind = in.u64();
  require_format(kind <= static_cast<std::uint64_t>(query::Query::Kind::kClusterSummary),
                 "serve protocol: bad query kind");
  q.kind = static_cast<query::Query::Kind>(kind);
  q.k = static_cast<std::size_t>(in.u64());
  switch (q.kind) {
    case query::Query::Kind::kSimilarByProbe: {
      const std::uint64_t dim = in.u64();
      q.probe.resize(static_cast<std::size_t>(dim));
      for (auto& v : q.probe) v = in.f64();
      break;
    }
    case query::Query::Kind::kSimilarByDoc:
      q.doc_id = in.u64();
      break;
    case query::Query::Kind::kClusterSummary:
      q.cluster = static_cast<int>(static_cast<std::int64_t>(in.u64()));
      break;
  }
  return q;
}

std::vector<std::uint8_t> query_key_bytes(const query::Query& q) {
  ByteWriter w;
  encode_query(w, q);
  return std::move(w.bytes);
}

std::uint64_t query_digest(const query::Query& q) {
  const auto bytes = query_key_bytes(q);
  return engine::fnv1a64(bytes.data(), bytes.size());
}

std::string format_result(const query::QueryResult& result) {
  std::string out = "ok ";
  if (result.kind == query::Query::Kind::kClusterSummary) {
    const auto& s = result.summary;
    out += "summary cluster=" + std::to_string(s.cluster) +
           " docs=" + std::to_string(s.size) + " cohesion=";
    append_f64_bits(out, s.cohesion);
    out += " theme=";
    for (std::size_t i = 0; i < s.top_terms.size(); ++i) {
      if (i > 0) out += '/';
      out += s.top_terms[i];
    }
    out += " reps=";
    for (std::size_t i = 0; i < s.representatives.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(s.representatives[i]);
    }
  } else {
    out += "similar hits=" + std::to_string(result.hits.size());
    for (const auto& h : result.hits) {
      out += ' ' + std::to_string(h.doc_id) + ':';
      append_f64_bits(out, h.similarity);
    }
  }
  return out;
}

std::string format_error(std::string_view what) {
  std::string out = "error ";
  // Keep the response a single line whatever the exception text held.
  for (const char c : what) out += (c == '\n' || c == '\r') ? ' ' : c;
  return out;
}

bool retry_safe_line(std::string_view line) {
  std::string error;
  const auto request = parse_request_line(line, error);
  if (!request.has_value()) return false;
  switch (request->kind) {
    case Request::Kind::kBlank:
    case Request::Kind::kQuery:
    case Request::Kind::kPing:
    case Request::Kind::kStats:
      return true;
    case Request::Kind::kReload:
    case Request::Kind::kIngest:
    case Request::Kind::kShutdown:
      return false;
  }
  return false;
}

}  // namespace sva::serve
