#include "sva/text/scanner.hpp"

#include <algorithm>
#include <unordered_map>

#include "sva/util/log.hpp"

namespace sva::text {

namespace {

/// Intermediate per-field token buffer before ids are assigned.
struct PendingField {
  std::string name;
  std::vector<std::string> tokens;
};

struct PendingRecord {
  std::uint64_t doc_id = 0;
  std::vector<PendingField> fields;
};

}  // namespace

ScanResult scan_sources(ga::Context& ctx, const corpus::SourceSet& sources,
                        const TokenizerConfig& tokenizer_config) {
  ScanResult result;
  const Tokenizer tokenizer(tokenizer_config);

  // ---- static byte-balanced source distribution -----------------------
  const auto parts = corpus::partition_by_bytes(sources, ctx.nprocs());
  const auto [doc_begin, doc_end] = parts[static_cast<std::size_t>(ctx.rank())];
  result.doc_range = {doc_begin, doc_end};

  // ---- local scan: tokenize, collect unique terms ---------------------
  std::vector<PendingRecord> pending;
  pending.reserve(doc_end - doc_begin);

  ga::DistHashmap term_map = ga::DistHashmap::create(ctx);
  ga::DistHashmap field_map = ga::DistHashmap::create(ctx);

  std::unordered_map<std::string, std::int64_t> local_term_ids;  // provisional
  std::vector<std::string> new_terms;

  for (std::size_t d = doc_begin; d < doc_end; ++d) {
    const corpus::RawDocument& doc = sources[d];
    PendingRecord rec;
    rec.doc_id = doc.id;
    rec.fields.reserve(doc.fields.size());
    for (const auto& field : doc.fields) {
      PendingField pf;
      pf.name = field.name;
      tokenizer.tokenize_into(field.text, pf.tokens, &result.stats.tokens);
      if (pf.tokens.empty()) ++result.stats.empty_fields;
      for (const auto& tok : pf.tokens) {
        if (local_term_ids.try_emplace(tok, -1).second) new_terms.push_back(tok);
      }
      rec.fields.push_back(std::move(pf));
    }
    result.stats.bytes_scanned += doc.bytes();
    ++result.stats.records_scanned;
    pending.push_back(std::move(rec));
  }

  // Model the I/O cost of pulling this rank's slice off the filesystem;
  // compute cost is measured directly.  A serial shared disk charges the
  // whole corpus to every rank (see CommModel::io_parallel).
  const auto total_bytes = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(result.stats.bytes_scanned)));
  ctx.charge(ctx.model().io_read(result.stats.bytes_scanned, total_bytes));

  // ---- global vocabulary: batched inserts into the distributed hashmap
  {
    const auto provisional = term_map.insert_batch(ctx, new_terms);
    for (std::size_t i = 0; i < new_terms.size(); ++i) {
      local_term_ids[new_terms[i]] = provisional[i];
    }
  }

  // Field-type names go through a (tiny) second distributed map.
  {
    std::vector<std::string> local_field_names;
    std::unordered_map<std::string, bool> seen;
    for (const auto& rec : pending) {
      for (const auto& f : rec.fields) {
        if (seen.try_emplace(f.name, true).second) local_field_names.push_back(f.name);
      }
    }
    (void)field_map.insert_batch(ctx, local_field_names);
  }

  // All inserts must complete before canonicalization.
  ctx.barrier();

  // ---- canonicalize vocabularies --------------------------------------
  auto term_final = term_map.finalize(ctx);
  auto field_final = field_map.finalize(ctx);
  result.vocabulary = term_final.vocabulary;
  result.field_type_names = field_final.vocabulary->terms;

  // Rewrite local records with canonical ids.
  std::unordered_map<std::string, std::int64_t> canonical_term_ids;
  canonical_term_ids.reserve(local_term_ids.size());
  for (const auto& [term, provisional] : local_term_ids) {
    canonical_term_ids.emplace(term, term_final.remap_id(provisional));
  }

  result.records.reserve(pending.size());
  std::size_t local_fields = 0;
  std::size_t local_terms = 0;
  for (auto& rec : pending) {
    ScannedRecord out;
    out.doc_id = rec.doc_id;
    out.fields.reserve(rec.fields.size());
    for (auto& f : rec.fields) {
      ScannedField sf;
      sf.type = static_cast<std::int32_t>(field_final.vocabulary->id_of(f.name));
      sf.terms.reserve(f.tokens.size());
      for (const auto& tok : f.tokens) sf.terms.push_back(canonical_term_ids.at(tok));
      local_terms += sf.terms.size();
      out.fields.push_back(std::move(sf));
      ++local_fields;
    }
    result.records.push_back(std::move(out));
  }
  pending.clear();

  // ---- forward index in global arrays (CSR over field instances) ------
  const auto field_base = static_cast<std::size_t>(
      ctx.exscan_sum(static_cast<std::int64_t>(local_fields)));
  const auto term_base = static_cast<std::size_t>(
      ctx.exscan_sum(static_cast<std::int64_t>(local_terms)));
  const auto total_fields = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(local_fields)));
  const auto total_terms = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(local_terms)));

  ForwardIndex fwd{
      .field_terms = ga::GlobalArray<std::int64_t>::create(
          ctx, std::max<std::size_t>(total_terms, 1)),
      .field_offsets = ga::GlobalArray<std::int64_t>::create(
          ctx, static_cast<std::size_t>(total_fields) + 1),
      .field_record = ga::GlobalArray<std::int64_t>::create(
          ctx, std::max<std::size_t>(total_fields, 1)),
      .field_type = ga::GlobalArray<std::int32_t>::create(
          ctx, std::max<std::size_t>(total_fields, 1)),
      .num_fields = total_fields,
      .num_records = static_cast<std::uint64_t>(sources.size()),
      .total_terms = total_terms,
      .rank_field_ranges = {},
  };
  {
    const auto bases = ctx.allgather(static_cast<std::int64_t>(field_base));
    const auto counts = ctx.allgather(static_cast<std::int64_t>(local_fields));
    fwd.rank_field_ranges.reserve(bases.size());
    for (std::size_t r = 0; r < bases.size(); ++r) {
      fwd.rank_field_ranges.emplace_back(static_cast<std::size_t>(bases[r]),
                                         static_cast<std::size_t>(bases[r] + counts[r]));
    }
  }

  // Assemble this rank's CSR segment locally, then publish with bulk puts.
  std::vector<std::int64_t> seg_terms;
  seg_terms.reserve(local_terms);
  std::vector<std::int64_t> seg_offsets;
  seg_offsets.reserve(local_fields + 1);
  std::vector<std::int64_t> seg_record;
  seg_record.reserve(local_fields);
  std::vector<std::int32_t> seg_type;
  seg_type.reserve(local_fields);

  std::int64_t cursor = static_cast<std::int64_t>(term_base);
  for (const auto& rec : result.records) {
    for (const auto& f : rec.fields) {
      seg_offsets.push_back(cursor);
      seg_record.push_back(static_cast<std::int64_t>(rec.doc_id));
      seg_type.push_back(f.type);
      seg_terms.insert(seg_terms.end(), f.terms.begin(), f.terms.end());
      cursor += static_cast<std::int64_t>(f.terms.size());
    }
  }

  if (!seg_terms.empty()) fwd.field_terms.put(ctx, term_base, seg_terms);
  if (!seg_offsets.empty()) fwd.field_offsets.put(ctx, field_base, seg_offsets);
  if (!seg_record.empty()) fwd.field_record.put(ctx, field_base, seg_record);
  if (!seg_type.empty()) fwd.field_type.put(ctx, field_base, seg_type);
  if (ctx.rank() == ctx.nprocs() - 1) {
    fwd.field_offsets.put_value(ctx, static_cast<std::size_t>(total_fields),
                                static_cast<std::int64_t>(total_terms));
  }
  ctx.barrier();

  result.forward = std::move(fwd);
  return result;
}

}  // namespace sva::text
