#include "sva/text/scanner.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "sva/text/token_arena.hpp"
#include "sva/util/log.hpp"

namespace sva::text {

namespace {

/// Shared scan core: tokenizes documents [doc_begin, doc_end) of `reader`
/// (this rank's slice of the current shard — or of the whole corpus for
/// the single-pass path), canonicalizes the vocabulary across ranks, and
/// publishes the forward index.  `num_records` is the record count the
/// forward index describes (shard size or corpus size).
ScanResult scan_range(ga::Context& ctx, const corpus::CorpusReader& reader,
                      std::size_t doc_begin, std::size_t doc_end, std::uint64_t num_records,
                      const TokenizerConfig& tokenizer_config) {
  ScanResult result;
  const Tokenizer tokenizer(tokenizer_config);
  result.doc_range = {doc_begin, doc_end};

  ga::DistHashmap term_map = ga::DistHashmap::create(ctx);
  ga::DistHashmap field_map = ga::DistHashmap::create(ctx);

  // ---- local scan: tokenize straight into dense local term ids --------
  // The fast path: each unique spelling is interned once into the arena,
  // the dedup map is keyed by string_views into it, and the token stream
  // is recorded as dense local ids (0, 1, 2, … in first-encounter order).
  // No per-token std::string is ever allocated, and after the global
  // vocabulary is canonicalized the records are rewritten with one table
  // lookup per token instead of a second string hash.
  TokenArena arena;
  std::unordered_map<std::string_view, std::int64_t> local_ids;
  std::vector<std::string_view> new_terms;  // local id -> spelling, first-seen order

  std::vector<std::string> field_names;  // local field-name id -> name
  std::unordered_map<std::string, std::int32_t> field_name_ids;

  result.records.reserve(doc_end > doc_begin ? doc_end - doc_begin : 0);

  corpus::RawDocument scratch;
  for (std::size_t d = doc_begin; d < doc_end; ++d) {
    const corpus::RawDocument& doc = *reader.fetch(d, scratch);
    ScannedRecord rec;
    rec.doc_id = doc.id;
    rec.raw_bytes = doc.bytes();
    rec.fields.reserve(doc.fields.size());
    for (const auto& field : doc.fields) {
      ScannedField sf;
      {
        auto [it, inserted] = field_name_ids.try_emplace(
            field.name, static_cast<std::int32_t>(field_names.size()));
        if (inserted) field_names.push_back(field.name);
        sf.type = it->second;  // provisional; canonicalized below
      }
      tokenizer.for_each_token(
          field.text,
          [&](std::string_view token) {
            auto it = local_ids.find(token);
            std::int64_t id;
            if (it == local_ids.end()) {
              const std::string_view stable = arena.intern(token);
              id = static_cast<std::int64_t>(new_terms.size());
              local_ids.emplace(stable, id);
              new_terms.push_back(stable);
            } else {
              id = it->second;
            }
            sf.terms.push_back(id);
          },
          &result.stats.tokens);
      if (sf.terms.empty()) ++result.stats.empty_fields;
      rec.fields.push_back(std::move(sf));
    }
    result.stats.bytes_scanned += doc.bytes();
    ++result.stats.records_scanned;
    result.records.push_back(std::move(rec));
  }

  // Model the I/O cost of pulling this rank's slice off the filesystem;
  // compute cost is measured directly.  A serial shared disk charges the
  // whole corpus to every rank (see CommModel::io_parallel).
  const auto total_bytes = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(result.stats.bytes_scanned)));
  ctx.charge(ctx.model().io_read(result.stats.bytes_scanned, total_bytes));

  // ---- global vocabulary: batched inserts into the distributed hashmap
  const std::vector<std::int64_t> provisional =
      term_map.insert_batch(ctx, std::span<const std::string_view>(new_terms));

  // Field-type names go through a (tiny) second distributed map.
  (void)field_map.insert_batch(ctx, field_names);

  // All inserts must complete before canonicalization.
  ctx.barrier();

  // ---- canonicalize vocabularies --------------------------------------
  auto term_final = term_map.finalize(ctx);
  auto field_final = field_map.finalize(ctx);
  result.vocabulary = term_final.vocabulary;
  result.field_type_names = field_final.vocabulary->terms;

  // Rewrite local records with canonical ids: local id -> canonical id is
  // a dense table, so the rewrite is pure array indexing.
  std::vector<std::int64_t> local_to_canonical(new_terms.size());
  for (std::size_t i = 0; i < new_terms.size(); ++i) {
    local_to_canonical[i] = term_final.remap_id(provisional[i]);
  }
  std::vector<std::int32_t> field_type_canonical(field_names.size());
  for (std::size_t i = 0; i < field_names.size(); ++i) {
    field_type_canonical[i] =
        static_cast<std::int32_t>(field_final.vocabulary->id_of(field_names[i]));
  }

  for (auto& rec : result.records) {
    for (auto& f : rec.fields) {
      f.type = field_type_canonical[static_cast<std::size_t>(f.type)];
      for (auto& t : f.terms) t = local_to_canonical[static_cast<std::size_t>(t)];
    }
  }

  result.forward = build_forward_index(ctx, result.records, num_records);
  return result;
}

}  // namespace

ForwardIndex build_forward_index(ga::Context& ctx, const std::vector<ScannedRecord>& records,
                                 std::uint64_t num_records) {
  std::size_t local_fields = 0;
  std::size_t local_terms = 0;
  for (const auto& rec : records) {
    local_fields += rec.fields.size();
    local_terms += rec.term_count();
  }

  // ---- forward index in global arrays (CSR over field instances) ------
  const auto field_base = static_cast<std::size_t>(
      ctx.exscan_sum(static_cast<std::int64_t>(local_fields)));
  const auto term_base = static_cast<std::size_t>(
      ctx.exscan_sum(static_cast<std::int64_t>(local_terms)));
  const auto total_fields = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(local_fields)));
  const auto total_terms = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(local_terms)));

  ForwardIndex fwd{
      .field_terms = ga::GlobalArray<std::int64_t>::create(
          ctx, std::max<std::size_t>(total_terms, 1)),
      .field_offsets = ga::GlobalArray<std::int64_t>::create(
          ctx, static_cast<std::size_t>(total_fields) + 1),
      .field_record = ga::GlobalArray<std::int64_t>::create(
          ctx, std::max<std::size_t>(total_fields, 1)),
      .field_type = ga::GlobalArray<std::int32_t>::create(
          ctx, std::max<std::size_t>(total_fields, 1)),
      .num_fields = total_fields,
      .num_records = num_records,
      .total_terms = total_terms,
      .rank_field_ranges = {},
  };
  {
    const auto bases = ctx.allgather(static_cast<std::int64_t>(field_base));
    const auto counts = ctx.allgather(static_cast<std::int64_t>(local_fields));
    fwd.rank_field_ranges.reserve(bases.size());
    for (std::size_t r = 0; r < bases.size(); ++r) {
      fwd.rank_field_ranges.emplace_back(static_cast<std::size_t>(bases[r]),
                                         static_cast<std::size_t>(bases[r] + counts[r]));
    }
  }

  // Assemble this rank's CSR segment locally, then publish with bulk puts.
  std::vector<std::int64_t> seg_terms;
  seg_terms.reserve(local_terms);
  std::vector<std::int64_t> seg_offsets;
  seg_offsets.reserve(local_fields + 1);
  std::vector<std::int64_t> seg_record;
  seg_record.reserve(local_fields);
  std::vector<std::int32_t> seg_type;
  seg_type.reserve(local_fields);

  std::int64_t cursor = static_cast<std::int64_t>(term_base);
  for (const auto& rec : records) {
    for (const auto& f : rec.fields) {
      seg_offsets.push_back(cursor);
      seg_record.push_back(static_cast<std::int64_t>(rec.doc_id));
      seg_type.push_back(f.type);
      seg_terms.insert(seg_terms.end(), f.terms.begin(), f.terms.end());
      cursor += static_cast<std::int64_t>(f.terms.size());
    }
  }

  if (!seg_terms.empty()) fwd.field_terms.put(ctx, term_base, seg_terms);
  if (!seg_offsets.empty()) fwd.field_offsets.put(ctx, field_base, seg_offsets);
  if (!seg_record.empty()) fwd.field_record.put(ctx, field_base, seg_record);
  if (!seg_type.empty()) fwd.field_type.put(ctx, field_base, seg_type);
  if (ctx.rank() == ctx.nprocs() - 1) {
    fwd.field_offsets.put_value(ctx, static_cast<std::size_t>(total_fields),
                                static_cast<std::int64_t>(total_terms));
  }
  ctx.barrier();
  return fwd;
}

ScanResult scan_sources(ga::Context& ctx, const corpus::SourceSet& sources,
                        const TokenizerConfig& tokenizer_config) {
  const corpus::InMemoryReader reader(sources);

  // ---- static byte-balanced source distribution -----------------------
  const auto parts = corpus::partition_by_bytes(sources, ctx.nprocs());
  const auto [doc_begin, doc_end] = parts[static_cast<std::size_t>(ctx.rank())];
  return scan_range(ctx, reader, doc_begin, doc_end,
                    static_cast<std::uint64_t>(sources.size()), tokenizer_config);
}

ScanResult scan_shard(ga::Context& ctx, const corpus::CorpusReader& reader,
                      std::pair<std::size_t, std::size_t> shard,
                      const std::vector<std::pair<std::size_t, std::size_t>>& rank_doc_ranges,
                      const TokenizerConfig& tokenizer_config) {
  // This rank scans the intersection of its full-corpus range with the
  // shard: the shard boundary bounds residency, the global partition
  // fixes ownership.
  const auto [rank_begin, rank_end] = rank_doc_ranges[static_cast<std::size_t>(ctx.rank())];
  const std::size_t begin = std::max(shard.first, rank_begin);
  const std::size_t end = std::min(shard.second, rank_end);
  return scan_range(ctx, reader, begin, std::max(begin, end),
                    static_cast<std::uint64_t>(shard.second - shard.first), tokenizer_config);
}

}  // namespace sva::text
