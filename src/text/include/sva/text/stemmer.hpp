// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping",
// Program 14(3), 1980).
//
// IN-SPIRE-class text engines conflate morphological variants before any
// statistics are computed — "connect", "connected", "connecting" and
// "connection" should land on one vocabulary entry, otherwise topicality
// splits a theme's evidence across inflections and the association matrix
// dilutes.  The tokenizer applies this stemmer when
// TokenizerConfig::stem is set.
//
// This is a faithful implementation of the original five-step algorithm
// (with the standard step numbering 1a/1b/1c/2/3/4/5a/5b), operating on
// lowercase ASCII tokens.  Tokens containing non-alphabetic bytes are
// returned unchanged.
#pragma once

#include <string>
#include <string_view>

namespace sva::text {

/// Stems `word` in place.  Expects a lowercase ASCII token; words shorter
/// than three letters and words containing non-letters are left unchanged
/// (the classic guard: 1- and 2-letter words never change).
void porter_stem_inplace(std::string& word);

/// Convenience copy wrapper.
[[nodiscard]] std::string porter_stem(std::string_view word);

}  // namespace sva::text
