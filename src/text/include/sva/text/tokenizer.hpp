// Byte-stream tokenizer for the Scan & Map stage.
//
// Terms are separated by whitespace "or any delimiters specified during
// configuration" (§3.2).  The tokenizer additionally supports the usual
// text-engine normalizations: ASCII case folding, token length limits,
// numeric-token suppression and a stopword list — all configurable so the
// PubMed-like and TREC-like pipelines can differ where it matters.
//
// Two consumption styles are offered: tokenize_into() materializes
// std::strings (convenient for tests and small callers), and
// for_each_token() streams each surviving token as a std::string_view
// into a sink with no per-token heap allocation — the scanner's fast
// path, which dedupes against a TokenArena.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace sva::text {

struct TokenizerConfig {
  /// Characters that terminate a token (in addition to nothing else; a
  /// byte is either a delimiter or part of a token).
  std::string delimiters = " \t\r\n.,;:!?()[]{}<>\"'`|/\\=+*&^%$#@~";
  bool lowercase = true;
  std::size_t min_length = 2;
  std::size_t max_length = 32;
  bool drop_numeric = true;  ///< drop tokens consisting solely of digits
  bool use_stopwords = true;
  /// Extra stopwords merged with the builtin English list.
  std::vector<std::string> extra_stopwords;
  /// Conflate morphological variants with the Porter stemmer (applied
  /// after stopword filtering, so stopwords are matched unstemmed).
  bool stem = false;
};

/// Counters describing what the tokenizer dropped; aggregated per rank.
struct TokenStats {
  std::uint64_t emitted = 0;
  std::uint64_t dropped_short = 0;
  std::uint64_t dropped_long = 0;
  std::uint64_t dropped_numeric = 0;
  std::uint64_t dropped_stopword = 0;

  TokenStats& operator+=(const TokenStats& o) {
    emitted += o.emitted;
    dropped_short += o.dropped_short;
    dropped_long += o.dropped_long;
    dropped_numeric += o.dropped_numeric;
    dropped_stopword += o.dropped_stopword;
    return *this;
  }
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerConfig config = {});

  /// Streams each surviving token to `sink(std::string_view)`.  The view
  /// aliases an internal scratch buffer and is only valid for the duration
  /// of the sink call; sinks that keep tokens must copy (or intern into a
  /// TokenArena).  One scratch buffer is (re)used for the whole text, so
  /// the loop performs no per-token allocation.
  template <typename Sink>
  void for_each_token(std::string_view text, Sink&& sink, TokenStats* stats = nullptr) const {
    TokenStats local;
    std::string token;
    token.reserve(config_.max_length + 1);
    for (const unsigned char c : text) {
      const char folded = fold_[c];
      if (folded == '\0') {
        if (!token.empty()) {
          if (accept(token, local)) sink(std::string_view(token));
          token.clear();
        }
      } else {
        token += folded;
      }
    }
    if (!token.empty() && accept(token, local)) sink(std::string_view(token));
    if (stats != nullptr) *stats += local;
  }

  /// Appends the surviving tokens of `text` to `out`.
  void tokenize_into(std::string_view text, std::vector<std::string>& out,
                     TokenStats* stats = nullptr) const;

  /// Convenience wrapper returning a fresh vector.
  [[nodiscard]] std::vector<std::string> tokenize(std::string_view text,
                                                  TokenStats* stats = nullptr) const;

  [[nodiscard]] const TokenizerConfig& config() const { return config_; }

  /// The builtin English stopword list (exposed for tests).
  static const std::vector<std::string>& builtin_stopwords();

 private:
  /// Applies the length/numeric/stopword filters and (if configured) the
  /// stemmer.  Returns whether the (possibly stemmed, in place) token
  /// should be emitted.
  bool accept(std::string& token, TokenStats& stats) const;

  TokenizerConfig config_;
  /// Byte fold table: '\0' for delimiters, the (possibly lowercased)
  /// byte otherwise.  One load replaces the delimiter test and the
  /// std::tolower call on the hot path.  NUL bytes therefore act as
  /// delimiters, which is the useful reading for text input.
  std::array<char, 256> fold_{};
  std::unordered_set<std::string> stopwords_;
};

}  // namespace sva::text
