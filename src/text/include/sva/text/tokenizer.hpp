// Byte-stream tokenizer for the Scan & Map stage.
//
// Terms are separated by whitespace "or any delimiters specified during
// configuration" (§3.2).  The tokenizer additionally supports the usual
// text-engine normalizations: ASCII case folding, token length limits,
// numeric-token suppression and a stopword list — all configurable so the
// PubMed-like and TREC-like pipelines can differ where it matters.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace sva::text {

struct TokenizerConfig {
  /// Characters that terminate a token (in addition to nothing else; a
  /// byte is either a delimiter or part of a token).
  std::string delimiters = " \t\r\n.,;:!?()[]{}<>\"'`|/\\=+*&^%$#@~";
  bool lowercase = true;
  std::size_t min_length = 2;
  std::size_t max_length = 32;
  bool drop_numeric = true;  ///< drop tokens consisting solely of digits
  bool use_stopwords = true;
  /// Extra stopwords merged with the builtin English list.
  std::vector<std::string> extra_stopwords;
  /// Conflate morphological variants with the Porter stemmer (applied
  /// after stopword filtering, so stopwords are matched unstemmed).
  bool stem = false;
};

/// Counters describing what the tokenizer dropped; aggregated per rank.
struct TokenStats {
  std::uint64_t emitted = 0;
  std::uint64_t dropped_short = 0;
  std::uint64_t dropped_long = 0;
  std::uint64_t dropped_numeric = 0;
  std::uint64_t dropped_stopword = 0;

  TokenStats& operator+=(const TokenStats& o) {
    emitted += o.emitted;
    dropped_short += o.dropped_short;
    dropped_long += o.dropped_long;
    dropped_numeric += o.dropped_numeric;
    dropped_stopword += o.dropped_stopword;
    return *this;
  }
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerConfig config = {});

  /// Appends the surviving tokens of `text` to `out`.
  void tokenize_into(std::string_view text, std::vector<std::string>& out,
                     TokenStats* stats = nullptr) const;

  /// Convenience wrapper returning a fresh vector.
  [[nodiscard]] std::vector<std::string> tokenize(std::string_view text,
                                                  TokenStats* stats = nullptr) const;

  [[nodiscard]] const TokenizerConfig& config() const { return config_; }

  /// The builtin English stopword list (exposed for tests).
  static const std::vector<std::string>& builtin_stopwords();

 private:
  TokenizerConfig config_;
  std::array<bool, 256> is_delimiter_{};
  std::unordered_set<std::string> stopwords_;
};

}  // namespace sva::text
