// Reusable per-rank token arena for the scan fast path.
//
// The scanner dedupes every token occurrence against the rank's unique
// terms.  Doing that with std::string keys costs a heap allocation per
// token plus repeated hashing; the arena instead stores each *unique*
// spelling exactly once in chunked, stable character storage (structure
// of arrays: one byte stream plus views into it), so the hot loop deals
// only in std::string_view and integer term ids.  Views returned by
// intern() remain valid until clear(); clear() keeps the chunk capacity
// so an arena can be recycled across rounds without reallocating.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace sva::text {

class TokenArena {
 public:
  explicit TokenArena(std::size_t chunk_bytes = 1 << 20);

  /// Copies `token` into stable arena storage and returns a view of the
  /// copy.  The view stays valid until clear() or destruction.
  std::string_view intern(std::string_view token);

  /// Forgets all interned tokens but keeps the allocated chunks.
  void clear();

  /// Bytes currently interned (across all chunks).
  [[nodiscard]] std::size_t size_bytes() const { return interned_bytes_; }

  /// Allocated capacity in bytes (diagnostics).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.capacity;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunks_[0..active_] are in use
  std::size_t interned_bytes_ = 0;
};

}  // namespace sva::text
