// Scan & Map + forward indexing (§3.2).
//
// Each rank receives a byte-balanced contiguous slice of the source set,
// tokenizes its documents, registers unique terms in the distributed
// hashmap (batched ARMCI-style RPCs), and builds the forward index:
// a field-to-term table and a document-to-field table.  The tables are
// stored in global arrays "so that they are globally accessible when
// processes exchange information during inverted file indexing".
//
// After the global hashmap is fully populated, the vocabulary is
// canonicalized (lexicographic IDs) so every downstream product is
// reproducible independent of the processor count, and the local records
// are rewritten in canonical IDs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sva/corpus/document.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/global_array.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/text/tokenizer.hpp"

namespace sva::text {

/// One scanned field: its type and the (canonical) term ids in occurrence
/// order.
struct ScannedField {
  std::int32_t type = 0;
  std::vector<std::int64_t> terms;
};

/// One scanned record (document) held by its owning rank.
struct ScannedRecord {
  std::uint64_t doc_id = 0;  ///< global record id (corpus position)
  /// Raw byte size of the source document.  Carried so checkpoint resume
  /// can reproduce the byte-balanced partition without the raw corpus.
  std::uint64_t raw_bytes = 0;
  std::vector<ScannedField> fields;

  [[nodiscard]] std::size_t term_count() const {
    std::size_t n = 0;
    for (const auto& f : fields) n += f.terms.size();
    return n;
  }
};

/// Globally accessible forward index in global arrays (CSR over field
/// instances).  Field instance f spans
///   field_terms[field_offsets[f] .. field_offsets[f+1])
/// and belongs to record field_record[f] with type field_type[f].
struct ForwardIndex {
  ga::GlobalArray<std::int64_t> field_terms;    ///< concatenated term ids
  ga::GlobalArray<std::int64_t> field_offsets;  ///< F+1 offsets
  ga::GlobalArray<std::int64_t> field_record;   ///< F: record gid
  ga::GlobalArray<std::int32_t> field_type;     ///< F: field type id
  std::uint64_t num_fields = 0;
  std::uint64_t num_records = 0;
  std::uint64_t total_terms = 0;
  /// Field-instance interval [begin, end) scanned by each rank; the
  /// indexer uses these as the per-rank "loads" for owner-first
  /// scheduling.  Replicated on every rank.
  std::vector<std::pair<std::size_t, std::size_t>> rank_field_ranges;
};

/// Per-rank scan statistics (aggregated views are produced on demand).
struct ScanStats {
  std::size_t bytes_scanned = 0;
  std::size_t records_scanned = 0;
  std::size_t empty_fields = 0;
  TokenStats tokens;
};

/// Everything the scanning component produces.
struct ScanResult {
  ForwardIndex forward;
  std::vector<ScannedRecord> records;  ///< this rank's records, canonical ids
  std::pair<std::size_t, std::size_t> doc_range;  ///< this rank's slice
  std::shared_ptr<const ga::Vocabulary> vocabulary;  ///< replicated
  std::vector<std::string> field_type_names;         ///< replicated, sorted
  ScanStats stats;                                   ///< this rank's counters
};

/// Collective: scans `sources` with the tokenizer configuration and
/// returns the forward index + local records.  All ranks pass the same
/// sources and config.
ScanResult scan_sources(ga::Context& ctx, const corpus::SourceSet& sources,
                        const TokenizerConfig& tokenizer_config);

/// Collective: scans one shard [shard.first, shard.second) of `reader`.
/// Each rank tokenizes the shard documents that fall inside its
/// *full-corpus* range (`rank_doc_ranges`, from corpus::partition_*), so
/// record ownership — and therefore every gathered downstream product —
/// matches what a single-pass scan of the whole corpus produces.  The
/// returned vocabulary, ids and forward index cover this shard only
/// (shard-canonical term ids); forward.num_records is the shard's record
/// count.  Only the shard's documents are materialized.
ScanResult scan_shard(ga::Context& ctx, const corpus::CorpusReader& reader,
                      std::pair<std::size_t, std::size_t> shard,
                      const std::vector<std::pair<std::size_t, std::size_t>>& rank_doc_ranges,
                      const TokenizerConfig& tokenizer_config);

/// Collective: assembles and publishes the CSR forward index over every
/// rank's (canonical-id) records — the scanner's final step, reused by
/// the shard merger to rebuild the merged forward product.
/// `num_records` is the global record count.
ForwardIndex build_forward_index(ga::Context& ctx, const std::vector<ScannedRecord>& records,
                                 std::uint64_t num_records);

}  // namespace sva::text
