#include "sva/text/stemmer.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace sva::text {

namespace {

// The algorithm works on word[0..end]; `end` is the index of the last
// letter of the currently surviving stem.  Helper predicates follow
// Porter's definitions: a consonant is a non-vowel, with 'y' counting as
// a consonant when it follows a vowel-position letter.

class Stem {
 public:
  explicit Stem(std::string& w) : w_(w), end_(w.size() - 1) {}

  [[nodiscard]] std::size_t length() const { return end_ + 1; }

  /// True when position i holds a consonant under Porter's rule.
  [[nodiscard]] bool is_consonant(std::size_t i) const {
    switch (w_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !is_consonant(i - 1);
      default:
        return true;
    }
  }

  /// Porter's measure m of w[0..limit]: the number of VC sequences in the
  /// form [C](VC)^m[V].
  [[nodiscard]] std::size_t measure(std::size_t limit) const {
    std::size_t m = 0;
    std::size_t i = 0;
    // Skip the optional initial consonant run.
    while (i <= limit && is_consonant(i)) ++i;
    while (i <= limit) {
      while (i <= limit && !is_consonant(i)) ++i;  // vowel run
      if (i > limit) break;
      ++m;
      while (i <= limit && is_consonant(i)) ++i;  // consonant run
    }
    return m;
  }

  /// True when the stem w[0..limit] contains a vowel.
  [[nodiscard]] bool has_vowel(std::size_t limit) const {
    for (std::size_t i = 0; i <= limit; ++i) {
      if (!is_consonant(i)) return true;
    }
    return false;
  }

  /// *d — the stem ends with a double consonant.
  [[nodiscard]] bool double_consonant(std::size_t i) const {
    if (i < 1) return false;
    return w_[i] == w_[i - 1] && is_consonant(i);
  }

  /// *o — the stem ends consonant-vowel-consonant where the final
  /// consonant is not w, x or y.
  [[nodiscard]] bool cvc(std::size_t i) const {
    if (i < 2) return false;
    if (!is_consonant(i) || is_consonant(i - 1) || !is_consonant(i - 2)) return false;
    return w_[i] != 'w' && w_[i] != 'x' && w_[i] != 'y';
  }

  /// True when the surviving stem ends with `suffix`; if so, `stem_limit`
  /// receives the index of the last letter before the suffix.
  bool ends_with(std::string_view suffix, std::size_t& stem_limit) const {
    if (suffix.size() > end_ + 1) return false;
    const std::size_t start = end_ + 1 - suffix.size();
    if (w_.compare(start, suffix.size(), suffix) != 0) return false;
    if (start == 0) return false;  // suffix must leave a nonempty stem
    stem_limit = start - 1;
    return true;
  }

  /// Replaces the current suffix (everything after `stem_limit`) with `s`.
  void set_suffix(std::size_t stem_limit, std::string_view s) {
    w_.resize(stem_limit + 1);
    w_.append(s);
    end_ = w_.size() - 1;
  }

  void truncate(std::size_t new_end) {
    end_ = new_end;
    w_.resize(end_ + 1);
  }

  [[nodiscard]] char last() const { return w_[end_]; }
  [[nodiscard]] char at(std::size_t i) const { return w_[i]; }
  [[nodiscard]] std::size_t end() const { return end_; }

 private:
  std::string& w_;
  std::size_t end_;
};

/// Rule table entry for steps 2, 3 and 4: replace `from` with `to` when
/// measure(stem) > min_measure.
struct Rule {
  std::string_view from;
  std::string_view to;
};

/// Applies the first matching rule whose stem measure exceeds
/// `min_measure`; returns true when a rule fired or matched.
bool apply_rules(Stem& s, std::initializer_list<Rule> rules, std::size_t min_measure) {
  for (const Rule& r : rules) {
    std::size_t limit = 0;
    if (!s.ends_with(r.from, limit)) continue;
    if (s.measure(limit) > min_measure) s.set_suffix(limit, r.to);
    return true;  // in Porter's algorithm the first matching suffix ends the step
  }
  return false;
}

void step_1a(Stem& s) {
  std::size_t limit = 0;
  if (s.ends_with("sses", limit)) {
    s.set_suffix(limit, "ss");
  } else if (s.ends_with("ies", limit)) {
    s.set_suffix(limit, "i");
  } else if (s.ends_with("ss", limit)) {
    // unchanged
  } else if (s.ends_with("s", limit)) {
    s.set_suffix(limit, "");
  }
}

void step_1b(Stem& s) {
  std::size_t limit = 0;
  if (s.ends_with("eed", limit)) {
    if (s.measure(limit) > 0) s.set_suffix(limit, "ee");
    return;
  }
  bool stripped = false;
  if (s.ends_with("ed", limit) && s.has_vowel(limit)) {
    s.set_suffix(limit, "");
    stripped = true;
  } else if (s.ends_with("ing", limit) && s.has_vowel(limit)) {
    s.set_suffix(limit, "");
    stripped = true;
  }
  if (!stripped) return;

  // Cleanup after a strip: restore an e, undo doubling, or leave alone.
  std::size_t l2 = 0;
  if (s.ends_with("at", l2) || s.ends_with("bl", l2) || s.ends_with("iz", l2)) {
    s.set_suffix(s.end(), "e");  // append e
  } else if (s.double_consonant(s.end()) && s.last() != 'l' && s.last() != 's' &&
             s.last() != 'z') {
    s.truncate(s.end() - 1);
  } else if (s.measure(s.end()) == 1 && s.cvc(s.end())) {
    s.set_suffix(s.end(), "e");
  }
}

void step_1c(Stem& s) {
  std::size_t limit = 0;
  if (s.ends_with("y", limit) && s.has_vowel(limit)) {
    s.set_suffix(limit, "i");
  }
}

void step_2(Stem& s) {
  apply_rules(s,
              {{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
               {"izer", "ize"},    {"abli", "able"},   {"alli", "al"},   {"entli", "ent"},
               {"eli", "e"},       {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
               {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"}, {"fulness", "ful"},
               {"ousness", "ous"}, {"aliti", "al"},    {"iviti", "ive"},   {"biliti", "ble"}},
              0);
}

void step_3(Stem& s) {
  apply_rules(s,
              {{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
               {"ical", "ic"},  {"ful", ""},   {"ness", ""}},
              0);
}

void step_4(Stem& s) {
  // Suffixes removed only when measure > 1.  Longest candidates first so
  // e.g. "ement" is preferred over "ment" over "ent" (Porter takes the
  // longest matching suffix within a step); "ion" additionally requires
  // the remaining stem to end in s or t.
  static constexpr std::array<std::string_view, 19> kSuffixes = {
      "ement", "ance", "ence", "able", "ible", "ment", "ant", "ent", "ism", "ate",
      "iti",   "ous",  "ive",  "ize",  "ion",  "al",   "er",  "ic",  "ou"};
  for (std::string_view suf : kSuffixes) {
    std::size_t limit = 0;
    if (!s.ends_with(suf, limit)) continue;
    if (suf == "ion" && s.at(limit) != 's' && s.at(limit) != 't') return;
    if (s.measure(limit) > 1) s.set_suffix(limit, "");
    return;
  }
}

void step_5a(Stem& s) {
  std::size_t limit = 0;
  if (!s.ends_with("e", limit)) return;
  const std::size_t m = s.measure(limit);
  if (m > 1 || (m == 1 && !s.cvc(limit))) s.set_suffix(limit, "");
}

void step_5b(Stem& s) {
  if (s.last() == 'l' && s.double_consonant(s.end()) && s.measure(s.end()) > 1) {
    s.truncate(s.end() - 1);
  }
}

}  // namespace

void porter_stem_inplace(std::string& word) {
  if (word.size() < 3) return;
  if (!std::all_of(word.begin(), word.end(),
                   [](unsigned char c) { return c >= 'a' && c <= 'z'; })) {
    return;
  }
  Stem s(word);
  step_1a(s);
  if (s.length() >= 3) step_1b(s);
  if (s.length() >= 3) step_1c(s);
  if (s.length() >= 3) step_2(s);
  if (s.length() >= 3) step_3(s);
  if (s.length() >= 3) step_4(s);
  if (s.length() >= 3) step_5a(s);
  if (s.length() >= 3) step_5b(s);
}

std::string porter_stem(std::string_view word) {
  std::string w(word);
  porter_stem_inplace(w);
  return w;
}

}  // namespace sva::text
