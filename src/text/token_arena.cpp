#include "sva/text/token_arena.hpp"

#include <algorithm>
#include <cstring>

namespace sva::text {

TokenArena::TokenArena(std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {
  chunks_.emplace_back();
  chunks_.back().data = std::make_unique<char[]>(chunk_bytes_);
  chunks_.back().capacity = chunk_bytes_;
}

std::string_view TokenArena::intern(std::string_view token) {
  // A token never spans chunks; oversized tokens get a chunk of their own
  // size so the invariant (stable contiguous bytes) holds for any length.
  const std::size_t need = token.size();
  Chunk* chunk = &chunks_[active_];
  if (chunk->capacity - chunk->used < need) {
    ++active_;
    if (active_ == chunks_.size()) chunks_.emplace_back();
    chunk = &chunks_[active_];
    if (chunk->capacity < need || chunk->capacity == 0) {
      const std::size_t capacity = std::max(chunk_bytes_, need);
      chunk->data = std::make_unique<char[]>(capacity);
      chunk->capacity = capacity;
    }
    chunk->used = 0;
  }
  char* dst = chunk->data.get() + chunk->used;
  if (need > 0) std::memcpy(dst, token.data(), need);
  chunk->used += need;
  interned_bytes_ += need;
  return {dst, need};
}

void TokenArena::clear() {
  for (auto& chunk : chunks_) chunk.used = 0;
  active_ = 0;
  interned_bytes_ = 0;
}

}  // namespace sva::text
