#include "sva/text/tokenizer.hpp"

#include <cctype>

#include "sva/text/stemmer.hpp"
#include "sva/util/stringutil.hpp"

namespace sva::text {

const std::vector<std::string>& Tokenizer::builtin_stopwords() {
  static const std::vector<std::string> kStopwords = {
      "a",    "an",   "and",  "are",   "as",    "at",   "be",    "but",  "by",
      "for",  "from", "had",  "has",   "have",  "he",   "her",   "his",  "if",
      "in",   "into", "is",   "it",    "its",   "more", "no",    "not",  "of",
      "on",   "or",   "our",  "she",   "so",    "that", "the",   "their", "then",
      "there", "these", "they", "this", "to",   "was",  "we",    "were", "which",
      "while", "with", "you",  "your"};
  return kStopwords;
}

Tokenizer::Tokenizer(TokenizerConfig config) : config_(std::move(config)) {
  for (unsigned char c : config_.delimiters) is_delimiter_[c] = true;
  if (config_.use_stopwords) {
    for (const auto& w : builtin_stopwords()) stopwords_.insert(w);
    for (const auto& w : config_.extra_stopwords) stopwords_.insert(to_lower(w));
  }
}

void Tokenizer::tokenize_into(std::string_view text, std::vector<std::string>& out,
                              TokenStats* stats) const {
  TokenStats local;
  std::string token;
  token.reserve(config_.max_length + 1);

  auto flush = [&] {
    if (token.empty()) return;
    const std::size_t len = token.size();
    if (len < config_.min_length) {
      ++local.dropped_short;
    } else if (len > config_.max_length) {
      ++local.dropped_long;
    } else if (config_.drop_numeric && is_all_digits(token)) {
      ++local.dropped_numeric;
    } else if (config_.use_stopwords && stopwords_.count(token) != 0) {
      ++local.dropped_stopword;
    } else {
      if (config_.stem) porter_stem_inplace(token);
      out.push_back(token);
      ++local.emitted;
    }
    token.clear();
  };

  for (unsigned char c : text) {
    if (is_delimiter_[c]) {
      flush();
    } else {
      token += config_.lowercase ? static_cast<char>(std::tolower(c)) : static_cast<char>(c);
    }
  }
  flush();

  if (stats != nullptr) *stats += local;
}

std::vector<std::string> Tokenizer::tokenize(std::string_view text, TokenStats* stats) const {
  std::vector<std::string> out;
  tokenize_into(text, out, stats);
  return out;
}

}  // namespace sva::text
