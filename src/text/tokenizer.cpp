#include "sva/text/tokenizer.hpp"

#include <cctype>

#include "sva/text/stemmer.hpp"
#include "sva/util/stringutil.hpp"

namespace sva::text {

const std::vector<std::string>& Tokenizer::builtin_stopwords() {
  // clang-format off
  static const std::vector<std::string> kStopwords = {
      "a",    "an",   "and",  "are",   "as",    "at",   "be",    "but",  "by",
      "for",  "from", "had",  "has",   "have",  "he",   "her",   "his",  "if",
      "in",   "into", "is",   "it",    "its",   "more", "no",    "not",  "of",
      "on",   "or",   "our",  "she",   "so",    "that", "the",   "their", "then",
      "there", "these", "they", "this", "to",   "was",  "we",    "were", "which",
      "while", "with", "you",  "your"};
  // clang-format on
  return kStopwords;
}

Tokenizer::Tokenizer(TokenizerConfig config) : config_(std::move(config)) {
  for (int c = 0; c < 256; ++c) {
    fold_[static_cast<std::size_t>(c)] =
        config_.lowercase ? static_cast<char>(std::tolower(c)) : static_cast<char>(c);
  }
  for (const unsigned char c : config_.delimiters) fold_[c] = '\0';
  if (config_.use_stopwords) {
    for (const auto& w : builtin_stopwords()) stopwords_.insert(w);
    for (const auto& w : config_.extra_stopwords) stopwords_.insert(to_lower(w));
  }
}

bool Tokenizer::accept(std::string& token, TokenStats& stats) const {
  const std::size_t len = token.size();
  if (len < config_.min_length) {
    ++stats.dropped_short;
  } else if (len > config_.max_length) {
    ++stats.dropped_long;
  } else if (config_.drop_numeric && is_all_digits(token)) {
    ++stats.dropped_numeric;
  } else if (config_.use_stopwords && stopwords_.count(token) != 0) {
    ++stats.dropped_stopword;
  } else {
    if (config_.stem) porter_stem_inplace(token);
    ++stats.emitted;
    return true;
  }
  return false;
}

void Tokenizer::tokenize_into(std::string_view text, std::vector<std::string>& out,
                              TokenStats* stats) const {
  for_each_token(
      text, [&](std::string_view token) { out.emplace_back(token); }, stats);
}

std::vector<std::string> Tokenizer::tokenize(std::string_view text, TokenStats* stats) const {
  std::vector<std::string> out;
  tokenize_into(text, out, stats);
  return out;
}

}  // namespace sva::text
