#include "sva/util/parse.hpp"

namespace sva {

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // Hand-rolled instead of strtoull: no errno protocol to get wrong, and
  // a leading '-' (which strtoull accepts and wraps) is just a non-digit.
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace sva
