#include "sva/util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "sva/util/error.hpp"
#include "sva/util/parse.hpp"

namespace sva::net {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

sockaddr_in resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr)
    throw Error("cannot resolve host '" + host + "': " + gai_strerror(rc));
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return addr;
}

}  // namespace

HostPort parse_hostport(const std::string& text, bool allow_port_zero) {
  const auto colon = text.rfind(':');
  require(colon != std::string::npos && colon > 0 && colon + 1 < text.size(),
          "expected host:port, got '" + text + "'");
  HostPort hp;
  hp.host = text.substr(0, colon);
  const auto port = parse_u64(text.substr(colon + 1));
  require(port.has_value() && *port <= 65535 &&
              (*port > 0 || allow_port_zero),
          "bad port in '" + text + "': expected an integer in [" +
              (allow_port_zero ? "0" : "1") + ", 65535]");
  hp.port = static_cast<std::uint16_t>(*port);
  return hp;
}

int listen_tcp(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = resolve(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("listen " + host + ":" + std::to_string(port));
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname");
  return ntohs(addr.sin_port);
}

int connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms) {
  const sockaddr_in addr = resolve(host, port);
  const std::int64_t deadline = now_ms() + timeout_ms;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    set_nonblocking(fd, true);
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd p{fd, POLLOUT, 0};
      const int wait = static_cast<int>(deadline - now_ms());
      if (wait > 0 && ::poll(&p, 1, wait) == 1) {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        rc = err == 0 ? 0 : -1;
        errno = err;
      } else {
        rc = -1;
        errno = ETIMEDOUT;
      }
    }
    if (rc == 0) {
      set_nonblocking(fd, false);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // The peer's listener may simply not be up yet during rendezvous;
    // retry refused connections until the deadline.
    if ((err == ECONNREFUSED || err == ETIMEDOUT) && now_ms() < deadline) {
      ::usleep(10 * 1000);
      continue;
    }
    errno = err;
    fail("connect " + host + ":" + std::to_string(port));
  }
}

int accept_tcp(int listen_fd, int timeout_ms, std::string* peer_host) {
  pollfd p{listen_fd, POLLIN, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc == 0) {
    errno = ETIMEDOUT;
    fail("accept (no connection within " + std::to_string(timeout_ms) +
         " ms)");
  }
  if (rc < 0) fail("poll");
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  const int fd =
      ::accept(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (fd < 0) fail("accept");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (peer_host != nullptr) {
    char buf[INET_ADDRSTRLEN] = {0};
    inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof buf);
    *peer_host = buf;
  }
  return fd;
}

void send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pw{fd, POLLOUT, 0};
        ::poll(&pw, 1, 100);
        continue;
      }
      fail("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void recv_all(int fd, void* data, std::size_t len, int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(data);
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (len > 0) {
    pollfd pr{fd, POLLIN, 0};
    const int wait = static_cast<int>(deadline - now_ms());
    if (wait <= 0 || ::poll(&pr, 1, wait) <= 0) {
      errno = ETIMEDOUT;
      fail("recv (no data within " + std::to_string(timeout_ms) + " ms)");
    }
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n == 0) throw Error("recv: connection closed by peer");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      fail("recv");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) fail("fcntl(F_SETFL)");
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace sva::net
