#include "sva/util/stringutil.hpp"

#include <array>
#include <cctype>
#include <cstdio>

namespace sva {

std::vector<std::string_view> split_any(std::string_view text, std::string_view delims) {
  std::array<bool, 256> is_delim{};
  for (unsigned char c : delims) is_delim[c] = true;

  std::vector<std::string_view> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool at_end = (i == text.size());
    if (at_end || is_delim[static_cast<unsigned char>(text[i])]) {
      if (i > begin) out.push_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

void to_lower_inplace(std::string& s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  to_lower_inplace(out);
  return out;
}

bool is_all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

}  // namespace sva
