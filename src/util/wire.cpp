#include "sva/util/wire.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#include "sva/util/error.hpp"

namespace sva::wire {
namespace {

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

void encode_frame_header(const FrameHeader& h, std::uint8_t* out) {
  put_u32(out + 0, h.magic);
  out[4] = h.type;
  out[5] = h.flags;
  put_u16(out + 6, h.src);
  put_u64(out + 8, h.seq);
  put_u64(out + 16, h.len);
}

FrameHeader decode_frame_header(std::span<const std::uint8_t> bytes,
                                std::size_t max_payload) {
  require_format(bytes.size() >= kFrameHeaderBytes,
                 "wire frame truncated: " + std::to_string(bytes.size()) +
                     " bytes, need " + std::to_string(kFrameHeaderBytes) +
                     " for the header");
  FrameHeader h;
  h.magic = get_u32(bytes.data() + 0);
  require_format(h.magic == kFrameMagic,
                 "wire frame corrupted: bad magic 0x" + [&] {
                   char buf[16];
                   std::snprintf(buf, sizeof buf, "%08x", h.magic);
                   return std::string(buf);
                 }());
  h.type = bytes[4];
  h.flags = bytes[5];
  h.src = get_u16(bytes.data() + 6);
  h.seq = get_u64(bytes.data() + 8);
  h.len = get_u64(bytes.data() + 16);
  require_format(h.len <= max_payload,
                 "wire frame oversized: payload of " + std::to_string(h.len) +
                     " bytes exceeds the " + std::to_string(max_payload) +
                     "-byte limit (socket_max_frame_bytes)");
  return h;
}

std::vector<std::uint8_t> make_frame(std::uint8_t type, std::uint8_t flags,
                                     std::uint16_t src, std::uint64_t seq,
                                     std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + payload.size());
  FrameHeader h;
  h.type = type;
  h.flags = flags;
  h.src = src;
  h.seq = seq;
  h.len = payload.size();
  encode_frame_header(h, frame.data());
  if (!payload.empty())
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  return frame;
}

}  // namespace sva::wire
