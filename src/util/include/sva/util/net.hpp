// Thin TCP helpers for the socket transport: listen/connect/accept with
// timeouts, full-buffer send/recv, and host:port parsing.
//
// These wrap the POSIX socket calls with the library's error discipline:
// configuration mistakes (an unparsable --rendezvous string) raise
// sva::InvalidArgument, and network failures (refused connection, peer
// reset, handshake timeout) raise sva::Error with the errno text so the
// caller can surface a named diagnostic instead of a hang.  Everything
// here is blocking with explicit deadlines; the transport's steady-state
// I/O loop manages its own non-blocking sockets directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sva::net {

/// A parsed "host:port" endpoint.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port".  Throws sva::InvalidArgument when there is no
/// colon, the host is empty, or the port is not a number in [1, 65535]
/// (port 0 is allowed when `allow_port_zero` is set, meaning "let the
/// kernel pick").
HostPort parse_hostport(const std::string& text, bool allow_port_zero = false);

/// Creates a listening TCP socket bound to host:port (port 0 = ephemeral).
/// Returns the fd.  Throws sva::Error on failure.
int listen_tcp(const std::string& host, std::uint16_t port);

/// Returns the local port a socket is bound to.
std::uint16_t local_port(int fd);

/// Connects to host:port, waiting at most timeout_ms.  Returns the
/// connected fd.  Throws sva::Error on refusal or timeout.
int connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms);

/// Accepts one connection from `listen_fd`, waiting at most timeout_ms.
/// Returns the connected fd and, when `peer_host` is non-null, stores the
/// peer's numeric address.  Throws sva::Error on timeout.
int accept_tcp(int listen_fd, int timeout_ms, std::string* peer_host);

/// Writes exactly `len` bytes (blocking).  Throws sva::Error on failure.
void send_all(int fd, const void* data, std::size_t len);

/// Reads exactly `len` bytes, waiting at most timeout_ms for the full
/// buffer.  Throws sva::Error on EOF, reset, or timeout.
void recv_all(int fd, void* data, std::size_t len, int timeout_ms);

/// Toggles O_NONBLOCK on a socket.
void set_nonblocking(int fd, bool on);

/// close(2) ignoring errors; tolerates fd < 0.
void close_fd(int fd);

}  // namespace sva::net
