// Tabular report emission: aligned ASCII tables for the console and CSV
// files for downstream plotting.  Every benchmark harness in bench/ prints
// its figure through this facility so the output rows mirror the paper's
// series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sva {

/// A simple column-oriented table: header row plus string cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the arity must match the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::size_t v);
  static std::string num(long long v);

  /// Renders an aligned ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas is attempted;
  /// callers use plain tokens).
  [[nodiscard]] std::string to_csv() const;

  /// Writes CSV to `path`; creates parent directories if needed.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& body() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sva
