// Small string helpers used across scanning and reporting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sva {

/// Splits `text` on any character in `delims`; empty pieces are dropped.
std::vector<std::string_view> split_any(std::string_view text, std::string_view delims);

/// ASCII lower-casing in place.
void to_lower_inplace(std::string& s);

/// ASCII lower-cased copy.
std::string to_lower(std::string_view s);

/// True when `s` consists only of ASCII digits (and is non-empty).
bool is_all_digits(std::string_view s);

/// Joins tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Human-readable byte count ("12.3 MB").
std::string format_bytes(std::size_t bytes);

}  // namespace sva
