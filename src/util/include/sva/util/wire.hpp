// Length-prefixed frame codec for the socket transport wire protocol.
//
// Every message on a rank-to-rank TCP connection is one frame: a fixed
// 24-byte header followed by `len` payload bytes.  The header is encoded
// little-endian, field by field, so the format is identical across hosts:
//
//   offset  size  field
//        0     4  magic  (kFrameMagic, "SVAF")
//        4     1  type   (opaque to this layer; the transport defines it)
//        5     1  flags
//        6     2  src    (sender rank)
//        8     8  seq    (round sequence number or request id)
//       16     8  len    (payload bytes that follow the header)
//
// This layer validates only what makes the *stream* trustworthy — the
// magic and the payload length bound — and throws sva::FormatError on
// violation so a corrupted or truncated stream surfaces as a named
// diagnostic instead of a misparse.  Frame types and payload layouts are
// the transport's business.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace sva::wire {

/// First four bytes of every frame ("SVAF" on the wire).
inline constexpr std::uint32_t kFrameMagic = 0x46415653u;

/// Fixed header size in bytes.
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Decoded frame header.  `len` is the payload length; the payload itself
/// follows the header on the stream.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::uint16_t src = 0;
  std::uint64_t seq = 0;
  std::uint64_t len = 0;
};

/// Encodes `h` into exactly kFrameHeaderBytes at `out`.
void encode_frame_header(const FrameHeader& h, std::uint8_t* out);

/// Decodes a frame header from `bytes`.  Throws sva::FormatError when the
/// buffer is shorter than a header, the magic does not match, or the
/// payload length exceeds `max_payload` (a corrupted length field would
/// otherwise ask the receiver to buffer garbage without bound).
FrameHeader decode_frame_header(std::span<const std::uint8_t> bytes,
                                std::size_t max_payload);

/// Builds a complete frame (header + payload) ready for the wire.
std::vector<std::uint8_t> make_frame(std::uint8_t type, std::uint8_t flags,
                                     std::uint16_t src, std::uint64_t seq,
                                     std::span<const std::uint8_t> payload);

}  // namespace sva::wire
