// Compact byte-stream serialization shared by the shard-merge extracts
// and the engine checkpoints: varbyte-coded integers, length-prefixed
// strings and raw little-endian pods.  The read side validates every
// access and throws FormatError on truncated or malformed input — a
// corrupt stream must never decode into garbage.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "sva/util/error.hpp"

namespace sva {

struct ByteWriter {
  std::vector<std::uint8_t> bytes;

  /// Varbyte (little-endian base-128) unsigned integer.
  void u64(std::uint64_t v) {
    while (v >= 0x80) {
      bytes.push_back(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    bytes.push_back(static_cast<std::uint8_t>(v));
  }

  /// Exact double bit pattern (8 raw bytes).
  void f64(double v) { raw(&v, sizeof(v)); }

  /// Length-prefixed string.
  void str(std::string_view s) {
    u64(s.size());
    bytes.insert(bytes.end(), s.begin(), s.end());
  }

  void raw(const void* data, std::size_t size) {
    if (size == 0) return;  // data may be null for empty payloads
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + size);
  }
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      require_format(pos_ < bytes_.size(), "byte stream: truncated varbyte");
      require_format(shift <= 63, "byte stream: varbyte overflows 64 bits");
      const std::uint8_t b = bytes_[pos_++];
      // The 10th byte carries only bit 63; anything more would be
      // silently dropped by the shift.
      require_format(shift < 63 || (b & 0x7E) == 0,
                     "byte stream: varbyte overflows 64 bits");
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] double f64() {
    double v = 0.0;
    raw(&v, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t len = u64();
    require_format(len <= remaining(), "byte stream: truncated string");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  void raw(void* out, std::size_t size) {
    require_format(size <= remaining(), "byte stream: truncated raw block");
    if (size == 0) return;  // an empty span's data() may be null
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
  }

  /// Advances past `size` bytes without copying (fixed-stride sections
  /// let readers jump straight to their slice).
  void skip(std::size_t size) {
    require_format(size <= remaining(), "byte stream: truncated skip");
    pos_ += size;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Asserts the stream was consumed exactly.
  void expect_done() const {
    require_format(pos_ == bytes_.size(), "byte stream: trailing bytes");
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace sva
