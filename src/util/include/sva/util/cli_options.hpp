// Declarative command-line option table shared by the sva_* tools.
//
// Each tool used to hand-roll the same loop: scan argv, fetch flag
// values, exit(2) with a one-line diagnostic on anything malformed.
// The drift between the three copies (slightly different messages,
// slightly different bounds checks) is what this parser removes:
//
//   sva::cli::Parser p("sva_pipeline", "usage: sva_pipeline [options]");
//   p.section("corpus");
//   p.u64("--seed", "N", "generator seed (default 20070326)", &seed);
//   p.option("--corpus", "pubmed|trec", "corpus family", [&](const std::string& v) {
//     ...;  // call p.die("--corpus must be pubmed or trec") on bad input
//   });
//   p.parse(argc, argv);
//
// Conventions enforced for every tool:
//   * `--help` / `-h` print the sectioned usage text and exit 0;
//   * unknown flags and missing values print `<tool>: ...` + usage, exit 2;
//   * numeric values go through the strict sva::parse_u64 (rejects signs,
//     non-digits, overflow) with one shared diagnostic, exit 2.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace sva::cli {

class Parser {
 public:
  /// `program` prefixes every diagnostic; `usage_head` is the first line(s)
  /// of --help output (e.g. "usage: sva_query --bundle FILE [options]").
  Parser(std::string program, std::string usage_head);

  /// Starts a titled help section; subsequent flags are listed under it.
  void section(std::string title);

  /// Boolean flag (no value).
  void flag(std::string name, std::string help, std::function<void()> on_set);

  /// Value flag; `on_value` receives the raw argument.
  void option(std::string name, std::string value_name, std::string help,
              std::function<void(const std::string&)> on_value);

  /// Strictly-parsed unsigned value stored into `*out`.
  void u64(std::string name, std::string value_name, std::string help, std::uint64_t* out);

  /// Strictly-parsed value bounded to [lo, hi], stored into `*out` as int.
  void bounded_int(std::string name, std::string value_name, std::string help, int* out,
                   int lo, int hi);

  /// Strictly-parsed size stored into `*out` (optionally left-shifted, for
  /// MiB-style flags).
  void size(std::string name, std::string value_name, std::string help, std::size_t* out,
            unsigned shift = 0);

  /// Parses argv.  Handles --help/-h (prints usage, exits 0); exits 2 with
  /// a `<program>: ...` diagnostic on unknown flags or missing values.
  void parse(int argc, char** argv) const;

  void print_usage(std::ostream& os) const;

  /// Uniform failure: prints "<program>: <message>" to stderr, exits 2.
  [[noreturn]] void die(const std::string& message) const;

  /// Strict unsigned parse with the uniform diagnostic (exits 2).
  [[nodiscard]] std::uint64_t parse_u64_or_die(const std::string& value,
                                               const std::string& flag) const;

 private:
  struct Flag {
    std::string name;
    std::string value_name;  // empty => boolean
    std::string help;
    std::function<void()> on_set;
    std::function<void(const std::string&)> on_value;
  };
  struct Section {
    std::string title;  // empty for the leading untitled section
    std::vector<Flag> flags;
  };

  [[nodiscard]] const Flag* find(const std::string& name) const;

  std::string program_;
  std::string usage_head_;
  std::vector<Section> sections_;
};

}  // namespace sva::cli
