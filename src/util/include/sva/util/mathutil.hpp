// Dense vector/matrix helpers shared by the signature, clustering and
// projection stages.  Everything operates on contiguous double storage;
// matrices are row-major with explicit (rows, cols).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sva {

/// Sum of |x_i| (L1 norm).
double l1_norm(std::span<const double> x);

/// Euclidean (L2) norm.
double l2_norm(std::span<const double> x);

/// Dot product; spans must have equal extent.
double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x (classic axpy); spans must have equal extent.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Squared Euclidean distance between two points of equal dimension.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Scales x in place so that its L1 norm is 1; a zero vector is untouched
/// and the function returns false (the caller treats it as a null
/// signature).
bool l1_normalize(std::span<double> x);

/// Row-major dense matrix with minimal affordances — storage plus shape.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() { return data_; }
  [[nodiscard]] std::span<const double> flat() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Symmetric eigendecomposition by the cyclic Jacobi method.
/// `a` is a symmetric n×n matrix (only read); returns eigenvalues in
/// descending order with matching unit eigenvectors as rows of `vectors`.
/// Throws NumericError if the sweep limit is exceeded.
struct EigenResult {
  std::vector<double> values;  ///< descending
  Matrix vectors;              ///< row i is the eigenvector of values[i]
};
EigenResult jacobi_eigen(const Matrix& a, int max_sweeps = 64, double tol = 1e-12);

/// Mean of a set of row vectors (rows × dim, row-major, contiguous).
std::vector<double> column_mean(const Matrix& rows);

/// Sample covariance (divides by rows-1; by rows when rows == 1) of the
/// row vectors in `rows` after subtracting `mean`.
Matrix covariance(const Matrix& rows, std::span<const double> mean);

}  // namespace sva
