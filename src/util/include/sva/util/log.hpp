// Minimal thread-safe leveled logger.
//
// The SPMD runtime runs one thread per simulated process; log lines from
// different ranks must not interleave mid-line, so all writes go through a
// single mutex.  Verbosity is controlled globally (default: Info) or via
// the SVA_LOG environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace sva::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the global verbosity threshold.
void set_level(Level level);

/// Returns the current global verbosity threshold.
Level level();

/// Returns true when a message at `lvl` would be emitted.
bool enabled(Level lvl);

/// Emits one line at level `lvl`; `tag` identifies the subsystem.
void write(Level lvl, const std::string& tag, const std::string& message);

namespace detail {

class LineStream {
 public:
  LineStream(Level lvl, std::string tag) : lvl_(lvl), tag_(std::move(tag)) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { write(lvl_, tag_, os_.str()); }

  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::string tag_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LineStream trace(std::string tag) { return {Level::Trace, std::move(tag)}; }
inline detail::LineStream debug(std::string tag) { return {Level::Debug, std::move(tag)}; }
inline detail::LineStream info(std::string tag) { return {Level::Info, std::move(tag)}; }
inline detail::LineStream warn(std::string tag) { return {Level::Warn, std::move(tag)}; }
inline detail::LineStream error(std::string tag) { return {Level::Error, std::move(tag)}; }

}  // namespace sva::log
