// Strict numeric parsing shared by the CLI tools (sva_pipeline,
// sva_query, sva_serve) and the serving request protocol.
//
// `std::strtoull` alone is a trap for user-facing flags: it silently
// wraps negative input ("-5" parses as 18446744073709551611) and leaves
// overflow detectable only through errno, which callers forget to reset
// and check.  parse_u64 rejects both, plus empty input, leading
// whitespace/signs, and trailing garbage — a flag value either parses
// exactly or it does not parse at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace sva {

/// Parses a non-negative base-10 integer strictly: the whole of `text`
/// must be digits, with no sign, whitespace, prefix, or trailing bytes,
/// and the value must fit in 64 bits.  Returns nullopt otherwise.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

}  // namespace sva
