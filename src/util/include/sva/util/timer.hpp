// Wall-clock and per-thread CPU timers.
//
// ThreadCpuTimer is the foundation of the virtual-time performance model:
// CLOCK_THREAD_CPUTIME_ID charges a thread only for the cycles it actually
// executed, so per-rank compute time is measured accurately even when many
// simulated processes time-share a single physical core.
#pragma once

#include <chrono>
#include <ctime>

namespace sva {

/// Monotonic wall-clock stopwatch (seconds, double precision).
class WallTimer {
 public:
  WallTimer() : start_(clock_type::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock_type::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(clock_type::now() - start_).count();
  }

 private:
  using clock_type = std::chrono::steady_clock;
  clock_type::time_point start_;
};

/// Per-thread CPU-time stopwatch.  Only counts cycles consumed by the
/// calling thread, independent of how the OS schedules other threads.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  /// CPU-seconds consumed by this thread since construction/reset.
  [[nodiscard]] double elapsed() const { return now() - start_; }

  /// Current thread CPU time in seconds (monotonic per thread).
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }

 private:
  double start_;
};

}  // namespace sva
