// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (corpus synthesis, k-means++
// seeding, sampling) draws from these generators so that a (seed, config)
// pair fully determines the output, independent of the processor count.
// xoshiro256** is used for streams; SplitMix64 seeds it and provides cheap
// hashing of keys into independent substreams.
#pragma once

#include <array>
#include <cstdint>

namespace sva {

/// SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit output.
/// Also usable as a standalone integer hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless mixing hash (SplitMix64 finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5EEDC0DEDEADBEEFull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent substream: same seed, different stream id.
  Xoshiro256(std::uint64_t seed, std::uint64_t stream)
      : Xoshiro256(mix64(seed) ^ mix64(~stream)) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling (rejection-free in the
    // common case, no modulo bias).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sva
