// Error types shared across the SVA library.
//
// The library reports programmer errors (bad arguments, protocol misuse of
// the SPMD runtime) via exceptions derived from sva::Error.  Runtime data
// errors (malformed documents) are tolerated and surfaced as counters, not
// exceptions, because a text engine must survive dirty corpora.
#pragma once

#include <stdexcept>
#include <string>

namespace sva {

/// Base class for all exceptions thrown by the SVA library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument or configuration supplied by the caller.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Misuse of the SPMD runtime protocol (e.g. mismatched collective calls,
/// out-of-range rank, or a global-array access outside the array bounds).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// Numeric failure (e.g. eigensolver non-convergence).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// Malformed serialized data (truncated varbyte stream, bad signature-store
/// header, corrupt compressed index).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

/// Throws FormatError with `msg` when `cond` is false — for read-side
/// validation of serialized data, where a failure means the bytes are
/// malformed rather than the caller being wrong.
inline void require_format(bool cond, const std::string& msg) {
  if (!cond) throw FormatError(msg);
}

}  // namespace sva
