#include "sva/util/mathutil.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sva/util/error.hpp"

namespace sva {

double l1_norm(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += std::abs(v);
  return s;
}

double l2_norm(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "squared_distance: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

bool l1_normalize(std::span<double> x) {
  const double n = l1_norm(x);
  if (n <= 0.0) return false;
  for (double& v : x) v /= n;
  return true;
}

EigenResult jacobi_eigen(const Matrix& a_in, int max_sweeps, double tol) {
  require(a_in.rows() == a_in.cols(), "jacobi_eigen: matrix must be square");
  const std::size_t n = a_in.rows();

  Matrix a = a_in;            // working copy, rotated towards diagonal
  Matrix v(n, n);             // accumulated rotations; rows become eigenvectors
  for (std::size_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  auto off_diagonal_norm = [&] {
    double s = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) s += a.at(p, q) * a.at(p, q);
    }
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) <= tol * 1e-3) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vpk = v.at(p, k);
          const double vqk = v.at(q, k);
          v.at(p, k) = c * vpk - s * vqk;
          v.at(q, k) = s * vpk + c * vqk;
        }
      }
    }
  }
  if (off_diagonal_norm() > std::max(tol, 1e-8)) {
    throw NumericError("jacobi_eigen: did not converge within sweep limit");
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a.at(i, i) > a.at(j, j); });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    result.values[i] = a.at(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) result.vectors.at(i, k) = v.at(order[i], k);
  }
  return result;
}

std::vector<double> column_mean(const Matrix& rows) {
  require(rows.rows() > 0, "column_mean: empty matrix");
  std::vector<double> mean(rows.cols(), 0.0);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const auto row = rows.row(r);
    for (std::size_t c = 0; c < rows.cols(); ++c) mean[c] += row[c];
  }
  for (double& m : mean) m /= static_cast<double>(rows.rows());
  return mean;
}

Matrix covariance(const Matrix& rows, std::span<const double> mean) {
  require(mean.size() == rows.cols(), "covariance: mean dimension mismatch");
  const std::size_t n = rows.rows();
  const std::size_t d = rows.cols();
  Matrix cov(d, d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = rows.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double di = row[i] - mean[i];
      for (std::size_t j = i; j < d; ++j) {
        cov.at(i, j) += di * (row[j] - mean[j]);
      }
    }
  }
  const double denom = (n > 1) ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov.at(i, j) /= denom;
      cov.at(j, i) = cov.at(i, j);
    }
  }
  return cov;
}

}  // namespace sva
