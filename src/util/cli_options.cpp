#include "sva/util/cli_options.hpp"

#include <cstdlib>
#include <iostream>

#include "sva/util/parse.hpp"

namespace sva::cli {

Parser::Parser(std::string program, std::string usage_head)
    : program_(std::move(program)), usage_head_(std::move(usage_head)) {
  sections_.push_back(Section{});
}

void Parser::section(std::string title) {
  sections_.push_back(Section{std::move(title), {}});
}

void Parser::flag(std::string name, std::string help, std::function<void()> on_set) {
  sections_.back().flags.push_back(
      Flag{std::move(name), "", std::move(help), std::move(on_set), nullptr});
}

void Parser::option(std::string name, std::string value_name, std::string help,
                    std::function<void(const std::string&)> on_value) {
  sections_.back().flags.push_back(Flag{std::move(name), std::move(value_name),
                                        std::move(help), nullptr, std::move(on_value)});
}

void Parser::u64(std::string name, std::string value_name, std::string help,
                 std::uint64_t* out) {
  const std::string flag_name = name;
  option(std::move(name), std::move(value_name), std::move(help),
         [this, flag_name, out](const std::string& v) {
           *out = parse_u64_or_die(v, flag_name);
         });
}

void Parser::bounded_int(std::string name, std::string value_name, std::string help,
                         int* out, int lo, int hi) {
  const std::string flag_name = name;
  option(std::move(name), std::move(value_name), std::move(help),
         [this, flag_name, out, lo, hi](const std::string& v) {
           const std::uint64_t u = parse_u64_or_die(v, flag_name);
           if (u > static_cast<std::uint64_t>(hi) ||
               static_cast<std::uint64_t>(lo) > u) {
             die(flag_name + " must be in [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "]");
           }
           *out = static_cast<int>(u);
         });
}

void Parser::size(std::string name, std::string value_name, std::string help,
                  std::size_t* out, unsigned shift) {
  const std::string flag_name = name;
  option(std::move(name), std::move(value_name), std::move(help),
         [this, flag_name, out, shift](const std::string& v) {
           *out = static_cast<std::size_t>(parse_u64_or_die(v, flag_name)) << shift;
         });
}

const Parser::Flag* Parser::find(const std::string& name) const {
  for (const auto& s : sections_) {
    for (const auto& f : s.flags) {
      if (f.name == name) return &f;
    }
  }
  return nullptr;
}

void Parser::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    }
    const Flag* f = find(arg);
    if (f == nullptr) {
      std::cerr << program_ << ": unknown argument " << arg << "\n";
      print_usage(std::cerr);
      std::exit(2);
    }
    if (f->value_name.empty()) {
      f->on_set();
      continue;
    }
    if (i + 1 >= argc) die(arg + " needs an argument");
    f->on_value(argv[++i]);
  }
}

void Parser::print_usage(std::ostream& os) const {
  os << usage_head_ << "\n";
  // Column width over all flags so every section aligns identically.
  std::size_t width = 0;
  for (const auto& s : sections_) {
    for (const auto& f : s.flags) {
      std::size_t w = f.name.size();
      if (!f.value_name.empty()) w += 1 + f.value_name.size();
      width = std::max(width, w);
    }
  }
  for (const auto& s : sections_) {
    if (s.flags.empty()) continue;
    os << "\n";
    if (!s.title.empty()) os << s.title << ":\n";
    for (const auto& f : s.flags) {
      std::string head = f.name;
      if (!f.value_name.empty()) head += " " + f.value_name;
      os << "  " << head << std::string(width - head.size() + 3, ' ') << f.help << "\n";
    }
  }
}

void Parser::die(const std::string& message) const {
  std::cerr << program_ << ": " << message << "\n";
  std::exit(2);
}

std::uint64_t Parser::parse_u64_or_die(const std::string& value,
                                       const std::string& flag) const {
  const auto v = sva::parse_u64(value);
  if (!v.has_value()) {
    die("bad value '" + value + "' for " + flag +
        " (expected an unsigned integer within 64 bits)");
  }
  return *v;
}

}  // namespace sva::cli
