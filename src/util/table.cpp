#include "sva/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sva/util/error.hpp"

namespace sva {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(), "Table: row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(width[c], '-');
    }
    os << "-+\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  require(out.good(), "Table: cannot open " + path);
  out << to_csv();
}

}  // namespace sva
