#include "sva/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sva::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::Info)};
std::mutex g_write_mutex;

Level level_from_env() {
  const char* env = std::getenv("SVA_LOG");
  if (env == nullptr) return Level::Info;
  if (std::strcmp(env, "trace") == 0) return Level::Trace;
  if (std::strcmp(env, "debug") == 0) return Level::Debug;
  if (std::strcmp(env, "info") == 0) return Level::Info;
  if (std::strcmp(env, "warn") == 0) return Level::Warn;
  if (std::strcmp(env, "error") == 0) return Level::Error;
  if (std::strcmp(env, "off") == 0) return Level::Off;
  return Level::Info;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?";
}

struct EnvInit {
  EnvInit() { g_level.store(static_cast<int>(level_from_env()), std::memory_order_relaxed); }
};
EnvInit g_env_init;

}  // namespace

void set_level(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

bool enabled(Level lvl) {
  return static_cast<int>(lvl) >= g_level.load(std::memory_order_relaxed);
}

void write(Level lvl, const std::string& tag, const std::string& message) {
  if (!enabled(lvl)) return;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %-10s %s\n", level_name(lvl), tag.c_str(), message.c_str());
}

}  // namespace sva::log
