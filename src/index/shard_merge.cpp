#include "sva/index/shard_merge.hpp"

#include <algorithm>
#include <unordered_map>

#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"

namespace sva::index {

std::vector<std::uint8_t> ShardExtract::serialize_vocab() const {
  ByteWriter out;
  out.u64(terms.size());
  for (const auto& t : terms) out.str(t);
  out.u64(field_type_names.size());
  for (const auto& f : field_type_names) out.str(f);
  return std::move(out.bytes);
}

std::vector<std::uint8_t> ShardExtract::serialize_data() const {
  require(term_frequency.size() == terms.size() && doc_frequency.size() == terms.size(),
          "ShardExtract: statistics misaligned with vocabulary");
  ByteWriter out;
  out.u64(num_records);
  out.u64(total_occurrences);
  out.u64(terms.size());
  for (const auto v : term_frequency) out.u64(static_cast<std::uint64_t>(v));
  for (const auto v : doc_frequency) out.u64(static_cast<std::uint64_t>(v));
  out.u64(postings.total_postings);
  // Offsets are monotone; store the per-term byte lengths instead.
  for (std::size_t t = 0; t < terms.size(); ++t) {
    out.u64(postings.offsets.empty() ? 0 : postings.offsets[t + 1] - postings.offsets[t]);
  }
  out.u64(postings.bytes.size());
  out.raw(postings.bytes.data(), postings.bytes.size());
  return std::move(out.bytes);
}

void ShardExtract::deserialize_vocab(std::span<const std::uint8_t> bytes, ShardExtract& out) {
  ByteReader in(bytes);
  const std::uint64_t n_terms = in.u64();
  require_format(n_terms <= bytes.size(), "shard extract: implausible term count");
  out.terms.clear();
  out.terms.reserve(static_cast<std::size_t>(n_terms));
  for (std::uint64_t i = 0; i < n_terms; ++i) out.terms.push_back(in.str());
  const std::uint64_t n_fields = in.u64();
  require_format(n_fields <= bytes.size(), "shard extract: implausible field-type count");
  out.field_type_names.clear();
  for (std::uint64_t i = 0; i < n_fields; ++i) out.field_type_names.push_back(in.str());
  in.expect_done();
}

void ShardExtract::deserialize_data(std::span<const std::uint8_t> bytes, ShardExtract& out) {
  ByteReader in(bytes);
  out.num_records = in.u64();
  out.total_occurrences = in.u64();
  const std::uint64_t n_terms = in.u64();
  require_format(n_terms <= bytes.size(), "shard extract: implausible term count");
  const auto n = static_cast<std::size_t>(n_terms);
  out.term_frequency.resize(n);
  for (auto& v : out.term_frequency) v = static_cast<std::int64_t>(in.u64());
  out.doc_frequency.resize(n);
  for (auto& v : out.doc_frequency) v = static_cast<std::int64_t>(in.u64());
  out.postings.num_terms = n_terms;
  out.postings.total_postings = in.u64();
  out.postings.offsets.assign(n + 1, 0);
  for (std::size_t t = 0; t < n; ++t) {
    out.postings.offsets[t + 1] = out.postings.offsets[t] + in.u64();
  }
  const std::uint64_t n_bytes = in.u64();
  require_format(n_bytes == out.postings.offsets.back(),
                 "shard extract: postings byte count mismatch");
  out.postings.bytes.resize(static_cast<std::size_t>(n_bytes));
  in.raw(out.postings.bytes.data(), out.postings.bytes.size());
  in.expect_done();
}

ShardExtract extract_shard(ga::Context& ctx, const text::ScanResult& scan,
                           const IndexingResult& indexing) {
  ShardExtract out;
  out.terms = scan.vocabulary->terms;
  out.field_type_names = scan.field_type_names;
  out.num_records = indexing.stats.num_records;
  out.total_occurrences = indexing.stats.total_occurrences;
  out.term_frequency = indexing.stats.term_frequency.to_vector(ctx);
  out.doc_frequency = indexing.stats.doc_frequency.to_vector(ctx);
  out.postings = compress_record_index(ctx, indexing.index);
  require(out.terms.size() == out.term_frequency.size(),
          "extract_shard: vocabulary/statistics size mismatch");
  return out;
}

MergedShards merge_shards(ga::Context& ctx, std::span<const ShardBlobs> blobs,
                          std::size_t num_shards) {
  constexpr int kRoot = 0;
  MergedShards merged;

  // ---- pass 1: vocabulary union --------------------------------------
  // Shard term lists are held (strings) until the final vocabulary is
  // known, then reduced to integer remaps.
  std::vector<ShardExtract> shard_vocabs(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::vector<std::uint8_t> blob;
    if (ctx.rank() == kRoot) blob = blobs[s].vocab;
    ga::broadcast_bytes(ctx, blob, kRoot);
    ShardExtract::deserialize_vocab(blob, shard_vocabs[s]);
  }

  std::vector<std::string> all_terms;
  std::vector<std::string> all_fields;
  for (const auto& sv : shard_vocabs) {
    all_terms.insert(all_terms.end(), sv.terms.begin(), sv.terms.end());
    all_fields.insert(all_fields.end(), sv.field_type_names.begin(),
                      sv.field_type_names.end());
  }
  std::sort(all_terms.begin(), all_terms.end());
  all_terms.erase(std::unique(all_terms.begin(), all_terms.end()), all_terms.end());
  std::sort(all_fields.begin(), all_fields.end());
  all_fields.erase(std::unique(all_fields.begin(), all_fields.end()), all_fields.end());

  auto vocabulary = std::make_shared<ga::Vocabulary>();
  vocabulary->terms = all_terms;
  vocabulary->term_to_id.reserve(all_terms.size());
  for (std::size_t i = 0; i < all_terms.size(); ++i) {
    vocabulary->term_to_id.emplace(all_terms[i], static_cast<std::int64_t>(i));
  }
  merged.vocabulary = vocabulary;
  merged.field_type_names = all_fields;

  std::unordered_map<std::string, std::int32_t> field_ids;
  for (std::size_t i = 0; i < all_fields.size(); ++i) {
    field_ids.emplace(all_fields[i], static_cast<std::int32_t>(i));
  }

  merged.term_remap.resize(num_shards);
  merged.field_type_remap.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto& remap = merged.term_remap[s];
    remap.resize(shard_vocabs[s].terms.size());
    for (std::size_t t = 0; t < remap.size(); ++t) {
      remap[t] = vocabulary->id_of(shard_vocabs[s].terms[t]);
      require(remap[t] >= 0, "merge_shards: shard term missing from union");
    }
    auto& fremap = merged.field_type_remap[s];
    fremap.resize(shard_vocabs[s].field_type_names.size());
    for (std::size_t f = 0; f < fremap.size(); ++f) {
      fremap[f] = field_ids.at(shard_vocabs[s].field_type_names[f]);
    }
    shard_vocabs[s] = ShardExtract{};  // free the strings
  }

  // ---- pass 2: statistics + postings ---------------------------------
  const std::size_t n_terms = all_terms.size();
  merged.stats.term_frequency = ga::GlobalArray<std::int64_t>::create(
      ctx, std::max<std::size_t>(n_terms, 1));
  merged.stats.doc_frequency = ga::GlobalArray<std::int64_t>::create(
      ctx, std::max<std::size_t>(n_terms, 1));
  merged.stats.num_terms = n_terms;

  // Every rank accumulates the full (replicated) frequency vectors — the
  // same transient the single-pass indexer's counting phase holds — and
  // collects decoded postings only for the final-term block it owns.
  std::vector<std::int64_t> term_freq(n_terms, 0);
  std::vector<std::int64_t> doc_freq(n_terms, 0);
  // Clamp the block to the real term count: the arrays are created with
  // at least one row even for an empty vocabulary.
  const auto block = merged.stats.term_frequency.local_row_range(ctx);
  const std::size_t tb = std::min(block.first, n_terms);
  const std::size_t te = std::min(block.second, n_terms);
  const std::size_t my_terms = te > tb ? te - tb : 0;
  std::vector<std::vector<std::int64_t>> my_postings(my_terms);

  for (std::size_t s = 0; s < num_shards; ++s) {
    std::vector<std::uint8_t> blob;
    if (ctx.rank() == kRoot) blob = blobs[s].data;
    ga::broadcast_bytes(ctx, blob, kRoot);
    ShardExtract shard;
    ShardExtract::deserialize_data(blob, shard);
    blob.clear();
    blob.shrink_to_fit();

    const auto& remap = merged.term_remap[s];
    require(shard.term_frequency.size() == remap.size(),
            "merge_shards: shard data/vocabulary size mismatch");
    merged.num_records += shard.num_records;
    merged.total_occurrences += shard.total_occurrences;
    for (std::size_t t = 0; t < remap.size(); ++t) {
      const auto final_id = static_cast<std::size_t>(remap[t]);
      term_freq[final_id] += shard.term_frequency[t];
      doc_freq[final_id] += shard.doc_frequency[t];
      if (final_id >= tb && final_id < te) {
        const auto decoded = shard.postings.postings_of(t);
        auto& run = my_postings[final_id - tb];
        run.insert(run.end(), decoded.begin(), decoded.end());
      }
    }
  }

  merged.stats.num_records = merged.num_records;
  merged.stats.total_occurrences = merged.total_occurrences;
  if (my_terms > 0) {
    merged.stats.term_frequency.put(
        ctx, tb, std::span<const std::int64_t>(term_freq.data() + tb, my_terms));
    merged.stats.doc_frequency.put(
        ctx, tb, std::span<const std::int64_t>(doc_freq.data() + tb, my_terms));
  }

  // ---- merged term→record CSR ----------------------------------------
  // Records are disjoint across shards, so each term's merged run is the
  // concatenation of its shard runs; sort once to canonicalize.
  std::vector<std::int64_t> local_postings;
  std::vector<std::int64_t> local_counts(my_terms, 0);
  for (std::size_t t = 0; t < my_terms; ++t) {
    auto& run = my_postings[t];
    std::sort(run.begin(), run.end());
    require(doc_freq[tb + t] == static_cast<std::int64_t>(run.size()),
            "merge_shards: document frequency disagrees with merged postings");
    local_counts[t] = static_cast<std::int64_t>(run.size());
    local_postings.insert(local_postings.end(), run.begin(), run.end());
    run.clear();
    run.shrink_to_fit();
  }

  const auto record_base = static_cast<std::size_t>(
      ctx.exscan_sum(static_cast<std::int64_t>(local_postings.size())));
  const auto total_record_postings = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(local_postings.size())));

  merged.index.num_terms = n_terms;
  merged.index.total_record_postings = total_record_postings;
  merged.index.total_field_postings = 0;
  merged.index.record_postings = ga::GlobalArray<std::int64_t>::create(
      ctx, std::max<std::size_t>(total_record_postings, 1));
  merged.index.record_offsets = ga::GlobalArray<std::int64_t>::create(
      ctx, std::max<std::size_t>(n_terms, 1) + 1);
  // Field-instance postings are intra-shard scaffolding; keep valid,
  // empty arrays so the struct stays safe to pass around.
  merged.index.field_postings = ga::GlobalArray<std::int64_t>::create(ctx, 1);
  merged.index.field_offsets = ga::GlobalArray<std::int64_t>::create(
      ctx, std::max<std::size_t>(n_terms, 1) + 1);

  if (!local_postings.empty()) {
    merged.index.record_postings.put(ctx, record_base, local_postings);
  }
  if (my_terms > 0) {
    std::vector<std::int64_t> my_offsets(my_terms);
    std::int64_t cursor = static_cast<std::int64_t>(record_base);
    for (std::size_t t = 0; t < my_terms; ++t) {
      my_offsets[t] = cursor;
      cursor += local_counts[t];
    }
    merged.index.record_offsets.put(ctx, tb, my_offsets);
  }
  if (ctx.rank() == ctx.nprocs() - 1) {
    merged.index.record_offsets.put_value(ctx, std::max<std::size_t>(n_terms, 1),
                                          static_cast<std::int64_t>(total_record_postings));
  }
  ctx.barrier();
  return merged;
}

}  // namespace sva::index
