#include "sva/index/inverted_index.hpp"

#include <algorithm>
#include <numeric>

#include "sva/util/error.hpp"
#include "sva/util/log.hpp"

namespace sva::index {

double LoadBalanceReport::max_busy() const {
  double m = 0.0;
  for (double b : busy_seconds) m = std::max(m, b);
  return m;
}

double LoadBalanceReport::mean_busy() const {
  if (busy_seconds.empty()) return 0.0;
  double s = 0.0;
  for (double b : busy_seconds) s += b;
  return s / static_cast<double>(busy_seconds.size());
}

double LoadBalanceReport::imbalance() const {
  const double mean = mean_busy();
  return mean > 0.0 ? max_busy() / mean : 1.0;
}

namespace {

/// Reads the half-open offset window [f_begin, f_end] (inclusive end
/// sentinel) plus the referenced term segment in two bulk gets.
struct FieldWindow {
  std::vector<std::int64_t> offsets;  ///< f_end - f_begin + 1 entries
  std::vector<std::int64_t> terms;    ///< the concatenated term ids

  [[nodiscard]] std::size_t field_count() const { return offsets.size() - 1; }

  [[nodiscard]] std::span<const std::int64_t> field_terms(std::size_t i) const {
    const auto base = static_cast<std::size_t>(offsets.front());
    const auto begin = static_cast<std::size_t>(offsets[i]) - base;
    const auto end = static_cast<std::size_t>(offsets[i + 1]) - base;
    return {terms.data() + begin, end - begin};
  }
};

FieldWindow read_window(ga::Context& ctx, const text::ForwardIndex& forward,
                        std::size_t f_begin, std::size_t f_end) {
  FieldWindow w;
  w.offsets.resize(f_end - f_begin + 1);
  forward.field_offsets.get(ctx, f_begin, w.offsets);
  const auto t_begin = static_cast<std::size_t>(w.offsets.front());
  const auto t_end = static_cast<std::size_t>(w.offsets.back());
  w.terms.resize(t_end - t_begin);
  if (!w.terms.empty()) forward.field_terms.get(ctx, t_begin, w.terms);
  return w;
}

}  // namespace

IndexingResult build_inverted_index(ga::Context& ctx, const text::ForwardIndex& forward,
                                    std::size_t num_terms, const IndexingConfig& config) {
  require(num_terms >= 1, "build_inverted_index: empty vocabulary");
  const auto n_terms = num_terms;
  const auto n_fields = static_cast<std::size_t>(forward.num_fields);

  IndexingResult result;
  result.index.num_terms = n_terms;
  result.stats.num_terms = n_terms;
  result.stats.num_records = forward.num_records;
  result.stats.total_occurrences = forward.total_terms;

  // ==== Phase A: counting + load table =================================
  // Local dense counts over this rank's own scanned fields.
  const auto [my_f_begin, my_f_end] =
      forward.rank_field_ranges[static_cast<std::size_t>(ctx.rank())];

  std::vector<std::int64_t> term_freq(n_terms, 0);
  std::vector<std::int64_t> field_posting_count(n_terms, 0);

  if (my_f_end > my_f_begin) {
    const FieldWindow window = read_window(ctx, forward, my_f_begin, my_f_end);
    std::vector<std::int64_t> unique_buf;
    for (std::size_t i = 0; i < window.field_count(); ++i) {
      const auto terms = window.field_terms(i);
      unique_buf.assign(terms.begin(), terms.end());
      std::sort(unique_buf.begin(), unique_buf.end());
      unique_buf.erase(std::unique(unique_buf.begin(), unique_buf.end()), unique_buf.end());
      for (std::int64_t t : terms) ++term_freq[static_cast<std::size_t>(t)];
      for (std::int64_t t : unique_buf) ++field_posting_count[static_cast<std::size_t>(t)];
    }
  }

  ctx.allreduce_sum(term_freq.data(), term_freq.size());
  ctx.allreduce_sum(field_posting_count.data(), field_posting_count.size());

  // FAST-INV load table: exclusive prefix sum of posting counts gives each
  // term's posting region; identical on every rank, computed locally.
  std::vector<std::int64_t> posting_offsets(n_terms + 1, 0);
  std::partial_sum(field_posting_count.begin(), field_posting_count.end(),
                   posting_offsets.begin() + 1);
  const auto total_field_postings = static_cast<std::uint64_t>(posting_offsets.back());
  result.index.total_field_postings = total_field_postings;

  // Publish term statistics + offsets; each rank writes its own block.
  result.stats.term_frequency = ga::GlobalArray<std::int64_t>::create(ctx, n_terms);
  result.stats.doc_frequency = ga::GlobalArray<std::int64_t>::create(ctx, n_terms);
  result.index.field_offsets = ga::GlobalArray<std::int64_t>::create(ctx, n_terms + 1);
  result.index.field_postings = ga::GlobalArray<std::int64_t>::create(
      ctx, std::max<std::size_t>(total_field_postings, 1));
  auto cursors = ga::GlobalArray<std::int64_t>::create(ctx, n_terms);

  {
    const auto [tb, te] = result.stats.term_frequency.local_row_range(ctx);
    if (te > tb) {
      result.stats.term_frequency.put(
          ctx, tb, std::span<const std::int64_t>(term_freq.data() + tb, te - tb));
      cursors.put(ctx, tb,
                  std::span<const std::int64_t>(posting_offsets.data() + tb, te - tb));
    }
    const auto [ob, oe] = result.index.field_offsets.local_row_range(ctx);
    if (oe > ob) {
      result.index.field_offsets.put(
          ctx, ob, std::span<const std::int64_t>(posting_offsets.data() + ob, oe - ob));
    }
  }
  ctx.barrier();

  // ==== Phase B: dynamically load-balanced placement ====================
  auto queue = ga::make_task_queue(ctx, config.scheduling, n_fields, config.chunk_fields,
                                   forward.rank_field_ranges, config.vtime_ordered_claims);

  const double busy_start = ctx.vtime();
  std::int64_t loads_claimed = 0;

  std::vector<std::pair<std::int64_t, std::int64_t>> chunk_postings;  // (term, field)
  std::vector<std::int64_t> unique_buf;
  std::vector<std::size_t> run_terms;
  std::vector<std::int64_t> run_counts;
  std::vector<std::size_t> posting_slots;
  std::vector<std::int64_t> posting_values;

  while (auto chunk = queue->next(ctx)) {
    ++loads_claimed;
    const FieldWindow window = read_window(ctx, forward, chunk->begin, chunk->end);

    chunk_postings.clear();
    for (std::size_t i = 0; i < window.field_count(); ++i) {
      const auto terms = window.field_terms(i);
      const auto field_gid = static_cast<std::int64_t>(chunk->begin + i);
      unique_buf.assign(terms.begin(), terms.end());
      std::sort(unique_buf.begin(), unique_buf.end());
      unique_buf.erase(std::unique(unique_buf.begin(), unique_buf.end()), unique_buf.end());
      for (std::int64_t t : unique_buf) chunk_postings.emplace_back(t, field_gid);
    }

    // Group by term into runs, then reserve every run's posting slots with
    // ONE batched fetch-and-add (GA element-list RMW) and write every
    // posting with ONE batched scatter.  Aggregation is what makes the
    // modeled cost realistic: GA/ARMCI ship element lists as one message
    // per owner, not one α-charged message per term.
    std::sort(chunk_postings.begin(), chunk_postings.end());
    run_terms.clear();
    run_counts.clear();
    std::size_t run_begin = 0;
    while (run_begin < chunk_postings.size()) {
      std::size_t run_end = run_begin + 1;
      while (run_end < chunk_postings.size() &&
             chunk_postings[run_end].first == chunk_postings[run_begin].first) {
        ++run_end;
      }
      run_terms.push_back(static_cast<std::size_t>(chunk_postings[run_begin].first));
      run_counts.push_back(static_cast<std::int64_t>(run_end - run_begin));
      run_begin = run_end;
    }
    const std::vector<std::int64_t> run_slots =
        cursors.fetch_add_batch(ctx, run_terms, run_counts);

    posting_slots.clear();
    posting_values.clear();
    posting_slots.reserve(chunk_postings.size());
    posting_values.reserve(chunk_postings.size());
    std::size_t pos = 0;
    for (std::size_t r = 0; r < run_terms.size(); ++r) {
      for (std::int64_t k = 0; k < run_counts[r]; ++k, ++pos) {
        posting_slots.push_back(static_cast<std::size_t>(run_slots[r]) +
                                static_cast<std::size_t>(k));
        posting_values.push_back(chunk_postings[pos].second);
      }
    }
    result.index.field_postings.scatter(ctx, posting_slots, posting_values);
  }

  const double busy_end = ctx.vtime();
  result.load_balance.busy_seconds = ctx.allgather(busy_end - busy_start);
  result.load_balance.loads_claimed = ctx.allgather(loads_claimed);
  ctx.barrier();

  // Canonicalize: sort each owned term's field-posting run so the index is
  // deterministic regardless of scheduling order.
  {
    const auto [tb, te] = result.stats.term_frequency.local_row_range(ctx);
    if (te > tb) {
      const auto p_begin = static_cast<std::size_t>(posting_offsets[tb]);
      const auto p_end = static_cast<std::size_t>(posting_offsets[te]);
      if (p_end > p_begin) {
        std::vector<std::int64_t> region(p_end - p_begin);
        result.index.field_postings.get(ctx, p_begin, region);
        for (std::size_t t = tb; t < te; ++t) {
          auto* first = region.data() + (posting_offsets[t] - posting_offsets[tb]);
          auto* last = region.data() + (posting_offsets[t + 1] - posting_offsets[tb]);
          std::sort(first, last);
        }
        result.index.field_postings.put(ctx, p_begin, region);
      }
    }
  }
  ctx.barrier();

  // ==== Phase C: aggregate term→field into term→record =================
  // Resolve field gid → record gid with a replicated copy of the (small)
  // field_record table.
  const std::vector<std::int64_t> field_record = forward.field_record.to_vector(ctx);

  const auto [tb, te] = result.stats.term_frequency.local_row_range(ctx);
  std::vector<std::int64_t> local_record_postings;
  std::vector<std::int64_t> local_record_counts(te > tb ? te - tb : 0, 0);

  if (te > tb) {
    const auto p_begin = static_cast<std::size_t>(posting_offsets[tb]);
    const auto p_end = static_cast<std::size_t>(posting_offsets[te]);
    std::vector<std::int64_t> region(p_end - p_begin);
    if (!region.empty()) result.index.field_postings.get(ctx, p_begin, region);

    std::vector<std::int64_t> records;
    for (std::size_t t = tb; t < te; ++t) {
      records.clear();
      const auto r_begin = static_cast<std::size_t>(posting_offsets[t] - posting_offsets[tb]);
      const auto r_end = static_cast<std::size_t>(posting_offsets[t + 1] - posting_offsets[tb]);
      for (std::size_t i = r_begin; i < r_end; ++i) {
        records.push_back(field_record[static_cast<std::size_t>(region[i])]);
      }
      std::sort(records.begin(), records.end());
      records.erase(std::unique(records.begin(), records.end()), records.end());
      local_record_counts[t - tb] = static_cast<std::int64_t>(records.size());
      local_record_postings.insert(local_record_postings.end(), records.begin(), records.end());
    }
  }

  const auto record_base = static_cast<std::size_t>(
      ctx.exscan_sum(static_cast<std::int64_t>(local_record_postings.size())));
  const auto total_record_postings = static_cast<std::uint64_t>(
      ctx.allreduce_sum(static_cast<std::int64_t>(local_record_postings.size())));
  result.index.total_record_postings = total_record_postings;

  result.index.record_postings = ga::GlobalArray<std::int64_t>::create(
      ctx, std::max<std::size_t>(total_record_postings, 1));
  result.index.record_offsets = ga::GlobalArray<std::int64_t>::create(ctx, n_terms + 1);

  if (!local_record_postings.empty()) {
    result.index.record_postings.put(ctx, record_base, local_record_postings);
  }
  if (te > tb) {
    // Record offsets for my block, plus document frequencies.
    std::vector<std::int64_t> my_offsets(te - tb);
    std::int64_t cursor = static_cast<std::int64_t>(record_base);
    for (std::size_t t = tb; t < te; ++t) {
      my_offsets[t - tb] = cursor;
      cursor += local_record_counts[t - tb];
    }
    result.index.record_offsets.put(ctx, tb, my_offsets);
    result.stats.doc_frequency.put(ctx, tb, local_record_counts);
  }
  if (ctx.rank() == ctx.nprocs() - 1) {
    result.index.record_offsets.put_value(ctx, n_terms,
                                          static_cast<std::int64_t>(total_record_postings));
  }
  ctx.barrier();

  return result;
}

}  // namespace sva::index
