// Query facade over the inverted index.
//
// The paper calls the indexes "a valuable intermediate product"; this is
// the downstream-user API that makes them usable directly: term lookup,
// conjunctive (AND) queries by sorted-postings intersection, and ranked
// disjunctive queries with tf-idf scoring from the global term
// statistics.  All reads are one-sided GA gets, so any rank can serve
// queries — the concurrency story the paper's "multiple concurrent
// users" motivation implies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sva/ga/dist_hashmap.hpp"
#include "sva/index/inverted_index.hpp"

namespace sva::index {

struct ScoredRecord {
  std::int64_t record = 0;
  double score = 0.0;
};

class TermSearcher {
 public:
  /// `index`/`stats` are the products of build_inverted_index;
  /// `vocabulary` is the canonical vocabulary from scanning.
  TermSearcher(InvertedIndex index, TermStats stats,
               std::shared_ptr<const ga::Vocabulary> vocabulary);

  /// Record postings of a term (empty when the term is unknown).
  [[nodiscard]] std::vector<std::int64_t> postings(ga::Context& ctx,
                                                   std::string_view term) const;

  /// Document frequency (0 when unknown).
  [[nodiscard]] std::int64_t doc_frequency(ga::Context& ctx, std::string_view term) const;

  /// Records containing ALL query terms (sorted-list intersection).
  [[nodiscard]] std::vector<std::int64_t> conjunctive(
      ga::Context& ctx, const std::vector<std::string>& terms) const;

  /// Top-k records by summed idf weight over matched query terms
  /// (disjunctive tf-idf-style ranking; presence-based tf).
  [[nodiscard]] std::vector<ScoredRecord> ranked(ga::Context& ctx,
                                                 const std::vector<std::string>& terms,
                                                 std::size_t top_k = 10) const;

 private:
  InvertedIndex index_;
  TermStats stats_;
  std::shared_ptr<const ga::Vocabulary> vocabulary_;
};

}  // namespace sva::index
