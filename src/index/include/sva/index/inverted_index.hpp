// Parallel Inverted File Indexing (§3.3).
//
// Implements the parallel FAST-INV scheme of the paper on top of the
// forward index built by the scanner:
//
//   Phase A (counting): each rank scans its local slice of the global
//   field-to-term table and accumulates per-term counts (term frequency
//   and term→field posting counts) into global arrays.  An exclusive
//   prefix sum over the counts yields posting offsets — FAST-INV's
//   "load table" that lets postings be placed without collisions.
//
//   Phase B (placement, dynamically load balanced): the field table is
//   cut into fixed-size chunks of fields ("loads").  Workers claim loads
//   from a shared task queue (GA atomic fetch-and-increment, own loads
//   first) and write term→field postings into the preallocated global
//   posting array via one batched cursor reservation (element-list
//   fetch-and-add) plus one batched scatter per load — GA/ARMCI-style
//   aggregation, one modeled message per owner rank.
//
//   Phase C (aggregation): term→field postings are aggregated into the
//   term→record index: each rank resolves its owned terms' field postings
//   to record ids, sorts and deduplicates them, and writes the final
//   term→record CSR.  Document frequencies (the remaining global term
//   statistic) fall out of the deduplication.
#pragma once

#include <cstdint>
#include <vector>

#include "sva/ga/global_array.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/ga/task_queue.hpp"
#include "sva/text/scanner.hpp"

namespace sva::index {

struct IndexingConfig {
  ga::Scheduling scheduling = ga::Scheduling::kOwnerFirst;
  /// Fields per load — the fixed-size chunking granularity [19].
  std::size_t chunk_fields = 128;
  /// Grant queue claims in virtual-time order (see ga::ClaimGate).  On an
  /// oversubscribed host this keeps the dynamic schedule — and therefore
  /// the Figure 9 load-balance measurement — faithful to a cluster whose
  /// ranks genuinely run concurrently.
  bool vtime_ordered_claims = true;
};

/// Term→field and term→record indexes in global arrays (CSR, one block of
/// terms per rank; term t's record postings live at
/// record_postings[record_offsets[t] .. record_offsets[t+1])).
struct InvertedIndex {
  ga::GlobalArray<std::int64_t> field_postings;   ///< term→field instance
  ga::GlobalArray<std::int64_t> field_offsets;    ///< N+1
  ga::GlobalArray<std::int64_t> record_postings;  ///< term→record (dedup, sorted)
  ga::GlobalArray<std::int64_t> record_offsets;   ///< N+1
  std::uint64_t num_terms = 0;
  std::uint64_t total_field_postings = 0;
  std::uint64_t total_record_postings = 0;
};

/// Global term statistics (§3.3): per-term document and collection
/// frequencies, distributed by term block.
struct TermStats {
  ga::GlobalArray<std::int64_t> term_frequency;  ///< N: total occurrences
  ga::GlobalArray<std::int64_t> doc_frequency;   ///< N: records containing
  std::uint64_t num_terms = 0;
  std::uint64_t num_records = 0;
  std::uint64_t total_occurrences = 0;
};

/// Load-balance telemetry for Figure 9: how long each rank was busy in
/// the placement phase and how many loads it processed.
struct LoadBalanceReport {
  std::vector<double> busy_seconds;       ///< per rank, virtual time
  std::vector<std::int64_t> loads_claimed;  ///< per rank

  [[nodiscard]] double max_busy() const;
  [[nodiscard]] double mean_busy() const;
  /// max/mean busy time; 1.0 is perfect balance.
  [[nodiscard]] double imbalance() const;
};

struct IndexingResult {
  InvertedIndex index;
  TermStats stats;
  LoadBalanceReport load_balance;
};

/// Collective: inverts `forward` into term→field and term→record indexes
/// and computes global term statistics.
IndexingResult build_inverted_index(ga::Context& ctx, const text::ForwardIndex& forward,
                                    std::size_t num_terms, const IndexingConfig& config = {});

}  // namespace sva::index
