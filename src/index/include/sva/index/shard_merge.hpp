// Shard-by-shard ingestion products and their merge (out-of-core stage
// 1–2).
//
// The sharded pipeline scans and inverts one document shard at a time;
// each shard's global arrays are dropped as soon as its *extract* — the
// shard vocabulary, per-term statistics, and the d-gap-compressed
// term→record postings — has been captured.  Extracts serialize to two
// compact blobs (vocabulary / data) that rank 0 retains and re-broadcasts
// during the merge, so no rank ever holds more than one decoded shard
// beyond the final merged products:
//
//   pass 1 (vocabulary): union the shard vocabularies, sort them into
//   the canonical lexicographic order — byte-identical to what a
//   single-pass scan canonicalizes — and derive per-shard remaps;
//
//   pass 2 (data): accumulate term/document frequencies (each record
//   lives in exactly one shard, so both are exact sums) and place each
//   shard's record postings into the merged term→record CSR, each rank
//   handling the terms of its own block.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/runtime.hpp"
#include "sva/index/codec.hpp"
#include "sva/index/inverted_index.hpp"
#include "sva/text/scanner.hpp"

namespace sva::index {

/// One shard's merged-state inputs, decoded form.
struct ShardExtract {
  std::vector<std::string> terms;             ///< shard-canonical (sorted)
  std::vector<std::string> field_type_names;  ///< shard-canonical (sorted)
  std::vector<std::int64_t> term_frequency;   ///< per shard term
  std::vector<std::int64_t> doc_frequency;    ///< per shard term
  CompressedIndex postings;                   ///< term→record, d-gaps
  std::uint64_t num_records = 0;              ///< records in this shard
  std::uint64_t total_occurrences = 0;

  /// Vocabulary blob: terms + field-type names (merge pass 1).
  [[nodiscard]] std::vector<std::uint8_t> serialize_vocab() const;
  /// Data blob: statistics + compressed postings (merge pass 2).
  [[nodiscard]] std::vector<std::uint8_t> serialize_data() const;

  /// Inverses; throw FormatError on malformed bytes.
  static void deserialize_vocab(std::span<const std::uint8_t> bytes, ShardExtract& out);
  static void deserialize_data(std::span<const std::uint8_t> bytes, ShardExtract& out);
};

/// Serialized extract as retained by rank 0 between shard passes.
struct ShardBlobs {
  std::vector<std::uint8_t> vocab;
  std::vector<std::uint8_t> data;
};

/// Collective: captures one shard's extract from its scan + indexing
/// products (statistics replicated via one-sided reads, postings via
/// compress_record_index).  Every rank returns the same extract.
ShardExtract extract_shard(ga::Context& ctx, const text::ScanResult& scan,
                           const IndexingResult& indexing);

/// The merged stage-1–2 state: canonical global vocabulary, exact global
/// term statistics, the merged term→record index, and the per-shard id
/// remaps the caller needs to rewrite its records into final canonical
/// ids.  (Field-instance postings are intra-shard scaffolding and are not
/// merged; the merged InvertedIndex carries the record-level product.)
struct MergedShards {
  std::shared_ptr<const ga::Vocabulary> vocabulary;
  std::vector<std::string> field_type_names;
  TermStats stats;
  InvertedIndex index;
  std::uint64_t num_records = 0;
  std::uint64_t total_occurrences = 0;
  std::vector<std::vector<std::int64_t>> term_remap;        ///< [shard][shard id] → final id
  std::vector<std::vector<std::int32_t>> field_type_remap;  ///< [shard][shard id] → final id
};

/// Collective: merges `num_shards` extracts.  `blobs` need only be
/// populated on rank 0 — each blob is broadcast, decoded, applied and
/// dropped in turn; every rank passes the same `num_shards`.
MergedShards merge_shards(ga::Context& ctx, std::span<const ShardBlobs> blobs,
                          std::size_t num_shards);

}  // namespace sva::index
