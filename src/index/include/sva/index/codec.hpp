// Posting-list compression: d-gaps + variable-byte encoding.
//
// FAST-INV exists because inverted files for multi-gigabyte corpora
// outgrow memory; the companion technique in the same literature
// (Frakes & Baeza-Yates [15]) is compressing each term's sorted posting
// list as deltas ("d-gaps") in a variable-byte code.  The engine keeps
// its working indexes uncompressed in global arrays, but persists them —
// and serves memory-constrained deployments — through this codec.
//
// Varbyte layout: little-endian base-128, 7 payload bits per byte, the
// high bit set on every byte except the last of each value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sva/ga/runtime.hpp"
#include "sva/index/inverted_index.hpp"

namespace sva::index {

/// Appends the varbyte encoding of `value` (must be >= 0) to `out`.
void varbyte_append(std::int64_t value, std::vector<std::uint8_t>& out);

/// Encodes non-negative values back-to-back.
[[nodiscard]] std::vector<std::uint8_t> varbyte_encode(std::span<const std::int64_t> values);

/// Decodes the whole buffer; throws FormatError on truncated input.
[[nodiscard]] std::vector<std::int64_t> varbyte_decode(std::span<const std::uint8_t> bytes);

/// Encodes a strictly sorted (ascending, unique) posting list as a first
/// value plus d-gaps.  Throws InvalidArgument when unsorted.
[[nodiscard]] std::vector<std::uint8_t> encode_postings(std::span<const std::int64_t> postings);

/// Inverse of encode_postings.
[[nodiscard]] std::vector<std::int64_t> decode_postings(std::span<const std::uint8_t> bytes);

/// A whole term→record index, compressed.  Term t's list occupies
/// bytes[offsets[t] .. offsets[t+1]).
struct CompressedIndex {
  std::vector<std::uint64_t> offsets;  ///< num_terms + 1
  std::vector<std::uint8_t> bytes;
  std::uint64_t num_terms = 0;
  std::uint64_t total_postings = 0;

  [[nodiscard]] std::vector<std::int64_t> postings_of(std::size_t term) const;
  /// Compression ratio vs. 8-byte raw postings (higher is better).
  [[nodiscard]] double compression_ratio() const;
};

/// Collective: every rank compresses its owned term block and the blocks
/// are gathered, so all ranks return the complete compressed index.
[[nodiscard]] CompressedIndex compress_record_index(ga::Context& ctx,
                                                    const InvertedIndex& index);

}  // namespace sva::index
