#include "sva/index/search.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "sva/util/error.hpp"

namespace sva::index {

TermSearcher::TermSearcher(InvertedIndex index, TermStats stats,
                           std::shared_ptr<const ga::Vocabulary> vocabulary)
    : index_(std::move(index)), stats_(std::move(stats)), vocabulary_(std::move(vocabulary)) {
  require(vocabulary_ != nullptr, "TermSearcher: null vocabulary");
}

std::vector<std::int64_t> TermSearcher::postings(ga::Context& ctx,
                                                 std::string_view term) const {
  const std::int64_t id = vocabulary_->id_of(term);
  if (id < 0) return {};
  std::int64_t bounds[2];
  index_.record_offsets.get(ctx, static_cast<std::size_t>(id),
                            std::span<std::int64_t>(bounds, 2));
  const auto begin = static_cast<std::size_t>(bounds[0]);
  const auto end = static_cast<std::size_t>(bounds[1]);
  std::vector<std::int64_t> out(end - begin);
  if (!out.empty()) index_.record_postings.get(ctx, begin, out);
  return out;
}

std::int64_t TermSearcher::doc_frequency(ga::Context& ctx, std::string_view term) const {
  const std::int64_t id = vocabulary_->id_of(term);
  if (id < 0) return 0;
  return stats_.doc_frequency.get_value(ctx, static_cast<std::size_t>(id));
}

std::vector<std::int64_t> TermSearcher::conjunctive(
    ga::Context& ctx, const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};

  // Fetch all posting lists, rarest first (classic intersection order).
  std::vector<std::vector<std::int64_t>> lists;
  lists.reserve(terms.size());
  for (const auto& term : terms) {
    auto p = postings(ctx, term);
    if (p.empty()) return {};  // an unknown term kills an AND query
    lists.push_back(std::move(p));
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });

  std::vector<std::int64_t> result = lists[0];
  std::vector<std::int64_t> next;
  for (std::size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    next.clear();
    std::set_intersection(result.begin(), result.end(), lists[i].begin(), lists[i].end(),
                          std::back_inserter(next));
    result.swap(next);
  }
  return result;
}

std::vector<ScoredRecord> TermSearcher::ranked(ga::Context& ctx,
                                               const std::vector<std::string>& terms,
                                               std::size_t top_k) const {
  std::map<std::int64_t, double> scores;
  const double r = static_cast<double>(std::max<std::uint64_t>(stats_.num_records, 1));
  for (const auto& term : terms) {
    const auto p = postings(ctx, term);
    if (p.empty()) continue;
    const double idf = std::log((1.0 + r) / (1.0 + static_cast<double>(p.size())));
    for (const auto record : p) scores[record] += idf;
  }

  std::vector<ScoredRecord> out;
  out.reserve(scores.size());
  for (const auto& [record, score] : scores) out.push_back({record, score});
  std::sort(out.begin(), out.end(), [](const ScoredRecord& a, const ScoredRecord& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.record < b.record;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

}  // namespace sva::index
