#include "sva/index/codec.hpp"

#include <algorithm>

#include "sva/util/error.hpp"

namespace sva::index {

void varbyte_append(std::int64_t value, std::vector<std::uint8_t>& out) {
  require(value >= 0, "varbyte_append: negative value");
  auto v = static_cast<std::uint64_t>(value);
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::vector<std::uint8_t> varbyte_encode(std::span<const std::int64_t> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size() + values.size() / 2);
  for (const auto v : values) varbyte_append(v, out);
  return out;
}

std::vector<std::int64_t> varbyte_decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::int64_t> out;
  std::uint64_t v = 0;
  int shift = 0;
  bool in_value = false;
  for (const std::uint8_t b : bytes) {
    // A valid encoding of a non-negative int64 uses at most 9 bytes
    // (shifts 0..56); a 10th byte would silently drop payload bits.
    require_format(shift <= 56, "varbyte_decode: value overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) != 0) {
      shift += 7;
      in_value = true;
    } else {
      out.push_back(static_cast<std::int64_t>(v));
      v = 0;
      shift = 0;
      in_value = false;
    }
  }
  require_format(!in_value, "varbyte_decode: truncated input");
  return out;
}

std::vector<std::uint8_t> encode_postings(std::span<const std::int64_t> postings) {
  std::vector<std::uint8_t> out;
  if (postings.empty()) return out;
  require(postings.front() >= 0, "encode_postings: negative posting");
  varbyte_append(postings.front(), out);
  for (std::size_t i = 1; i < postings.size(); ++i) {
    const std::int64_t gap = postings[i] - postings[i - 1];
    require(gap > 0, "encode_postings: postings must be strictly ascending");
    varbyte_append(gap, out);
  }
  return out;
}

std::vector<std::int64_t> decode_postings(std::span<const std::uint8_t> bytes) {
  std::vector<std::int64_t> gaps = varbyte_decode(bytes);
  std::int64_t running = 0;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    running += gaps[i];
    gaps[i] = running;
  }
  return gaps;
}

std::vector<std::int64_t> CompressedIndex::postings_of(std::size_t term) const {
  require(term < num_terms, "CompressedIndex: term out of range");
  const std::uint64_t lo = offsets[term];
  const std::uint64_t hi = offsets[term + 1];
  return decode_postings(std::span<const std::uint8_t>(bytes.data() + lo, hi - lo));
}

double CompressedIndex::compression_ratio() const {
  if (bytes.empty()) return 1.0;
  return static_cast<double>(total_postings) * 8.0 / static_cast<double>(bytes.size());
}

CompressedIndex compress_record_index(ga::Context& ctx, const InvertedIndex& index) {
  const auto n_terms = static_cast<std::size_t>(index.num_terms);

  // Each rank compresses the term block it owns (postings are already
  // sorted by the indexer's canonicalization pass).
  const auto [tb, te] = index.record_offsets.local_row_range(ctx);
  const std::size_t my_terms = te > tb ? std::min(te, n_terms) - tb : 0;

  std::vector<std::uint8_t> my_bytes;
  std::vector<std::uint64_t> my_lengths(my_terms, 0);
  if (my_terms > 0) {
    std::vector<std::int64_t> bounds(my_terms + 1);
    index.record_offsets.get(ctx, tb, bounds);
    const auto p_begin = static_cast<std::size_t>(bounds.front());
    const auto p_end = static_cast<std::size_t>(bounds.back());
    std::vector<std::int64_t> region(p_end - p_begin);
    if (!region.empty()) index.record_postings.get(ctx, p_begin, region);

    for (std::size_t t = 0; t < my_terms; ++t) {
      const auto lo = static_cast<std::size_t>(bounds[t]) - p_begin;
      const auto hi = static_cast<std::size_t>(bounds[t + 1]) - p_begin;
      const auto encoded =
          encode_postings(std::span<const std::int64_t>(region.data() + lo, hi - lo));
      my_lengths[t] = encoded.size();
      my_bytes.insert(my_bytes.end(), encoded.begin(), encoded.end());
    }
  }

  CompressedIndex out;
  out.num_terms = index.num_terms;
  out.total_postings = index.total_record_postings;
  const auto all_lengths = ctx.allgatherv(std::span<const std::uint64_t>(my_lengths));
  out.bytes = ctx.allgatherv(std::span<const std::uint8_t>(my_bytes));
  out.offsets.resize(n_terms + 1, 0);
  for (std::size_t t = 0; t < n_terms; ++t) {
    out.offsets[t + 1] = out.offsets[t] + all_lengths[t];
  }
  require(out.offsets.back() == out.bytes.size(),
          "compress_record_index: offset/byte mismatch");
  return out;
}

}  // namespace sva::index
