#include "compare.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sva/util/error.hpp"

namespace svabench::compare {

namespace {

std::string format_pct(double fraction) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << fraction * 100.0 << "%";
  return out.str();
}

/// Regression fraction of a "higher is better" metric (positive = worse).
double drop_fraction(double baseline, double current) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - current) / baseline;
}

/// Regression fraction of a "lower is better" metric (positive = worse).
double rise_fraction(double baseline, double current) {
  if (baseline <= 0.0) return current > 0.0 ? 1.0 : 0.0;
  return (current - baseline) / baseline;
}

bool is_throughput_field(const std::string& key) {
  return key.size() >= 4 && key.compare(key.size() - 4, 4, "mb_s") == 0;
}

/// Walks both documents in parallel, checking every numeric metric field
/// present on both sides.  Structure drift (added/removed fields, longer
/// arrays) is tolerated — the trajectory is append-friendly by design.
void walk(const std::string& bench, const std::string& path, const json::Value& baseline,
          const json::Value& current, const CompareOptions& options, CompareResult& out) {
  if (baseline.is_object() && current.is_object()) {
    for (const auto& [key, value] : baseline.members()) {
      const json::Value* other = current.find(key);
      if (other == nullptr) continue;
      const std::string child = path.empty() ? key : path + "." + key;
      if (value.is_number() && other->is_number()) {
        if (key == "modeled_s") {
          const double rise = rise_fraction(value.as_double(), other->as_double());
          if (rise > options.modeled_tolerance) {
            out.findings.push_back(
                {!options.allow_modeled_change,
                 bench + ": " + child + " regressed " + format_pct(rise) + " (" +
                     std::to_string(value.as_double()) + "s -> " +
                     std::to_string(other->as_double()) + "s, tolerance " +
                     format_pct(options.modeled_tolerance) + ")"});
          }
        } else if (bench == "micro_text" && is_throughput_field(key)) {
          const double drop = drop_fraction(value.as_double(), other->as_double());
          if (drop > options.throughput_tolerance) {
            out.findings.push_back(
                {true, bench + ": " + child + " throughput regressed " + format_pct(drop) +
                           " (" + std::to_string(value.as_double()) + " -> " +
                           std::to_string(other->as_double()) + " MB/s, tolerance " +
                           format_pct(options.throughput_tolerance) + ")"});
          }
        }
      } else {
        walk(bench, child, value, *other, options, out);
      }
    }
  } else if (baseline.is_array() && current.is_array()) {
    const std::size_t n = std::min(baseline.size(), current.size());
    for (std::size_t i = 0; i < n; ++i) {
      walk(bench, path + "[" + std::to_string(i) + "]", baseline.items()[i],
           current.items()[i], options, out);
    }
  }
}

/// First entry of `series` satisfying `match`, or nullptr.  Shared by the
/// keyed gates (checksums, micro_ga wall) so "entry went missing ->
/// informational" semantics stay in one shape.
template <typename Match>
const json::Value* find_series_entry(const json::Value& series, Match&& match) {
  for (const auto& candidate : series.items()) {
    if (match(candidate)) return &candidate;
  }
  return nullptr;
}

/// Wall-clock gate for the host-time micros (micro_ga primitives,
/// micro_query serving planes, micro_serve daemon planes): matches
/// data.series entries by their (primitive, config) key — array
/// positions shift whenever a config is added — and fails when best_s,
/// p50_s or p95_s rises beyond the wall tolerance.  p99_s is compared
/// informationally only: the extreme tail is too noisy on shared
/// runners to fail a build over.
void compare_wall_series(const std::string& bench, const json::Value& baseline,
                         const json::Value& current, const CompareOptions& options,
                         CompareResult& out) {
  const json::Value* base_data = baseline.find("data");
  const json::Value* cur_data = current.find("data");
  if (base_data == nullptr || cur_data == nullptr) return;
  const json::Value* base_series = base_data->find("series");
  const json::Value* cur_series = cur_data->find("series");
  if (base_series == nullptr || cur_series == nullptr) return;
  if (!base_series->is_array() || !cur_series->is_array()) return;

  for (const auto& base_entry : base_series->items()) {
    const json::Value* primitive = base_entry.find("primitive");
    const json::Value* config = base_entry.find("config");
    const json::Value* base_best = base_entry.find("best_s");
    if (primitive == nullptr || config == nullptr || base_best == nullptr) continue;
    const json::Value* cur_entry =
        find_series_entry(*cur_series, [&](const json::Value& candidate) {
          const json::Value* cp = candidate.find("primitive");
          const json::Value* cc = candidate.find("config");
          return cp != nullptr && cc != nullptr &&
                 cp->as_string() == primitive->as_string() &&
                 cc->as_string() == config->as_string();
        });
    const std::string key = primitive->as_string() + " " + config->as_string();
    if (cur_entry == nullptr) {
      out.findings.push_back(
          {false, bench + ": wall metric '" + key + "' absent from current run"});
      continue;
    }
    // Entries the producer flagged informational (e.g. micro_ga's
    // process-backend axis, whose fork + shm staging costs are recorded
    // for trajectory, not yet gated) report drift without failing.
    const json::Value* info = base_entry.find("informational");
    const bool entry_gates = !(info != nullptr && info->is_bool() && info->as_bool());
    // best_s plus the latency quantiles the serving micro reports; all
    // keyed gates, same tolerance.  p99_s never fails the build — the
    // extreme tail is dominated by scheduler jitter on shared runners.
    struct WallField {
      const char* field;
      bool gates;
    };
    for (const WallField wf :
         {WallField{"best_s", true}, {"p50_s", true}, {"p95_s", true}, {"p99_s", false}}) {
      const json::Value* base_metric = base_entry.find(wf.field);
      const json::Value* cur_metric = cur_entry->find(wf.field);
      if (base_metric == nullptr || cur_metric == nullptr) continue;
      if (!base_metric->is_number() || !cur_metric->is_number()) continue;
      const double rise = rise_fraction(base_metric->as_double(), cur_metric->as_double());
      if (rise > options.wall_tolerance) {
        out.findings.push_back(
            {wf.gates && entry_gates,
             bench + ": wall " + wf.field + " for '" + key + "' regressed " +
                           format_pct(rise) + " (" +
                           std::to_string(base_metric->as_double()) + "s -> " +
                           std::to_string(cur_metric->as_double()) + "s, tolerance " +
                           format_pct(options.wall_tolerance) + ")"});
      }
    }
  }
}

void compare_checksums(const std::string& bench, const json::Value& baseline,
                       const json::Value& current, const CompareOptions& options,
                       CompareResult& out) {
  const json::Value* base_det = baseline.find("determinism");
  const json::Value* cur_det = current.find("determinism");
  if (base_det == nullptr || cur_det == nullptr) return;
  const json::Value* base_series = base_det->find("series");
  const json::Value* cur_series = cur_det->find("series");
  if (base_series == nullptr || cur_series == nullptr) return;

  for (const auto& base_entry : base_series->items()) {
    const std::string& key = base_entry.at("key").as_string();
    const json::Value* cur_entry =
        find_series_entry(*cur_series, [&](const json::Value& candidate) {
          return candidate.at("key").as_string() == key;
        });
    if (cur_entry == nullptr) {
      out.findings.push_back(
          {false, bench + ": determinism key '" + key + "' absent from current run"});
      continue;
    }
    for (const auto& [procs, checksum] : base_entry.at("checksums").members()) {
      const json::Value* cur_checksum = cur_entry->at("checksums").find(procs);
      if (cur_checksum == nullptr) continue;
      if (cur_checksum->as_string() != checksum.as_string()) {
        out.findings.push_back(
            {!options.allow_checksum_change,
             bench + ": determinism checksum changed for '" + key + "' at P=" + procs +
                 " (" + checksum.as_string() + " -> " + cur_checksum->as_string() + ")"});
      }
    }
  }
}

json::Value load_report(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw sva::Error("compare: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return json::Value::parse(buffer.str());
}

}  // namespace

void compare_report_documents(const std::string& name, const json::Value& baseline,
                              const json::Value& current, const CompareOptions& options,
                              CompareResult& out) {
  ++out.benchmarks_compared;
  compare_checksums(name, baseline, current, options, out);
  if (name == "micro_ga" || name == "micro_query" || name == "micro_serve" ||
      name == "micro_delta") {
    compare_wall_series(name, baseline, current, options, out);
  }
  const json::Value* base_data = baseline.find("data");
  const json::Value* cur_data = current.find("data");
  if (base_data != nullptr && cur_data != nullptr) {
    walk(name, "data", *base_data, *cur_data, options, out);
  }
}

CompareResult compare_directories(const std::filesystem::path& baseline_dir,
                                  const std::filesystem::path& current_dir,
                                  const CompareOptions& options) {
  CompareResult out;

  std::vector<std::filesystem::path> baseline_files;
  if (std::filesystem::is_directory(baseline_dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(baseline_dir)) {
      const std::string stem = entry.path().filename().string();
      if (entry.is_regular_file() && stem.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        baseline_files.push_back(entry.path());
      }
    }
  }
  std::sort(baseline_files.begin(), baseline_files.end());

  if (baseline_files.empty()) {
    out.findings.push_back(
        {false, "no baseline BENCH_*.json under " + baseline_dir.string() +
                    "; nothing to compare (first run?)"});
    return out;
  }

  for (const auto& path : baseline_files) {
    const std::string filename = path.filename().string();
    const std::string name =
        filename.substr(6, filename.size() - 6 - 5);  // strip BENCH_ / .json
    const std::filesystem::path current_path = current_dir / filename;
    if (!std::filesystem::exists(current_path)) {
      out.findings.push_back(
          {true, name + ": present in baseline but missing from current run"});
      continue;
    }
    try {
      const json::Value baseline = load_report(path);
      const json::Value current = load_report(current_path);
      compare_report_documents(name, baseline, current, options, out);
    } catch (const sva::Error& e) {
      out.findings.push_back({true, name + ": " + e.what()});
    }
  }
  return out;
}

}  // namespace svabench::compare
