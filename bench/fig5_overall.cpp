// Figure 5: overall wall-clock time of the text engine for PubMed and
// TREC at three problem sizes each, P = 1..32.
//
// Paper's claim: time-to-solution drops almost linearly with processor
// count for every size (PubMed plotted log-scale; the 16 GB/4-processor
// point degrades from memory pressure, which our model does not emulate).
#include <iostream>

#include "registry.hpp"
#include "sva/util/stringutil.hpp"

namespace svabench {
namespace {

report::Report run_fig5(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Figure 5: overall timings (PubMed-like & TREC-like, 3 sizes)");

  report::Report out;
  out.name = "fig5_overall";
  out.kind = "figure";
  out.title = "Overall engine timings, both datasets, 3 sizes";
  json::Value series = json::Value::array();

  sva::Table table({"dataset", "size", "bytes", "procs", "modeled_s", "speedup_vs_p1"});
  for (CorpusKind kind : {CorpusKind::kPubMedLike, CorpusKind::kTrecLike}) {
    for (int size : opts.size_indices) {
      const auto& sources = corpus_for(kind, size, opts);
      const std::string key =
          sva::corpus::corpus_kind_name(kind) + "/" + size_label(kind, size);
      json::Value entry = json::Value::object();
      entry["dataset"] = sva::corpus::corpus_kind_name(kind);
      entry["size"] = size_label(kind, size);
      entry["bytes"] = sources.total_bytes();
      json::Value runs = json::Value::array();

      double p1_time = 0.0;
      for (int nprocs : opts.procs) {
        const auto run = run_engine(kind, size, nprocs, opts);
        const double t = run.modeled_seconds;
        if (nprocs == opts.procs.front()) p1_time = t;
        json::Value record =
            report::run_record(out, key, nprocs, run, sources.total_bytes());
        record["speedup_vs_p1"] = p1_time > 0 ? p1_time / t : 1.0;
        runs.push_back(std::move(record));
        table.add_row({sva::corpus::corpus_kind_name(kind), size_label(kind, size),
                       sva::format_bytes(sources.total_bytes()),
                       sva::Table::num(static_cast<long long>(nprocs)),
                       sva::Table::num(t, 3),
                       sva::Table::num(p1_time > 0 ? p1_time / t : 1.0, 2)});
        std::cout << "  [" << sva::corpus::corpus_kind_name(kind) << " " << size + 1 << "/3"
                  << " P=" << nprocs << "] modeled " << sva::Table::num(t, 2) << " s (wall "
                  << sva::Table::num(run.wall_seconds, 2) << " s)\n";
      }
      entry["runs"] = std::move(runs);
      series.push_back(std::move(entry));
    }
  }
  emit_table(opts, "fig5_overall", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"fig5_overall", "figure",
                          "overall engine timings (both datasets, 3 sizes, P-sweep)",
                          &run_fig5};

}  // namespace
}  // namespace svabench
