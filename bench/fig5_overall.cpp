// Figure 5: overall wall-clock time of the text engine for PubMed and
// TREC at three problem sizes each, P = 1..32.
//
// Paper's claim: time-to-solution drops almost linearly with processor
// count for every size (PubMed plotted log-scale; the 16 GB/4-processor
// point degrades from memory pressure, which our model does not emulate).
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner("Figure 5: overall timings (PubMed-like & TREC-like, 3 sizes)");

  sva::Table table({"dataset", "size", "bytes", "procs", "modeled_s", "speedup_vs_p1"});
  for (CorpusKind kind : {CorpusKind::kPubMedLike, CorpusKind::kTrecLike}) {
    for (int size = 0; size < 3; ++size) {
      double p1_time = 0.0;
      for (int nprocs : svabench::proc_counts()) {
        const auto run = svabench::run_engine(kind, size, nprocs);
        const double t = run.modeled_seconds;
        if (nprocs == 1) p1_time = t;
        table.add_row({sva::corpus::corpus_kind_name(kind),
                       svabench::size_label(kind, size),
                       sva::format_bytes(svabench::corpus_for(kind, size).total_bytes()),
                       sva::Table::num(static_cast<long long>(nprocs)),
                       sva::Table::num(t, 3),
                       sva::Table::num(p1_time > 0 ? p1_time / t : 1.0, 2)});
        std::cout << "  [" << sva::corpus::corpus_kind_name(kind) << " " << size + 1 << "/3"
                  << " P=" << nprocs << "] modeled " << sva::Table::num(t, 2) << " s (wall "
                  << sva::Table::num(run.wall_seconds, 2) << " s)\n";
      }
    }
  }
  svabench::emit("fig5_overall", table);
  return 0;
}
