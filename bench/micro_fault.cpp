// Microbenchmark for the fault-injection substrate's hot-path promise:
// a disabled fault point costs one relaxed atomic load, so production
// code can afford points on every load-bearing edge (section-file IO,
// every shm collective, every admitted query).  Measured per traversal:
// disarmed (the always-on production configuration), armed-elsewhere
// (rules exist but not for this site — the map lookup under the lock),
// and armed-no-fire (a rule on this site whose trigger never decides).
#include <string>

#include "registry.hpp"
#include "sva/fault/fault.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

constexpr char kBenchSite[] = "bench.fault.site";

/// Best-of-reps seconds for `iters` traversals of kBenchSite.
double best_point_seconds(int reps, int iters) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    sva::WallTimer timer;
    for (int i = 0; i < iters; ++i) {
      (void)sva::fault::point(kBenchSite);
    }
    const double elapsed = timer.elapsed();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

report::Report run_micro_fault(const BenchOptions& opts) {
  banner("Micro: fault-point traversal cost (host wall-clock)");

  report::Report out;
  out.name = "micro_fault";
  out.kind = "micro";
  out.title = "fault-point traversal cost (host wall-clock)";

  const int reps = opts.smoke ? 3 : 8;
  const int iters = opts.smoke ? 200000 : 2000000;
  sva::Table table({"state", "best_s", "per_traversal_ns"});
  json::Value series = json::Value::array();

  auto add = [&](const std::string& state, double seconds) {
    const double per_ns = 1.0e9 * seconds / static_cast<double>(iters);
    table.add_row({state, sva::Table::num(seconds, 5), sva::Table::num(per_ns, 3)});
    json::Value record = json::Value::object();
    record["state"] = state;
    record["best_s"] = seconds;
    record["ops"] = static_cast<double>(iters);
    record["per_traversal_ns"] = per_ns;
    series.push_back(std::move(record));
  };

  // Disarmed: the production steady state — this is the figure that must
  // stay at "one relaxed load" as the substrate grows.
  sva::fault::reset();
  add("disarmed", best_point_seconds(reps, iters));

  // Armed, but the rule names a different site: traversals take the
  // locked map lookup and miss.
  sva::fault::configure("bench.fault.other:error:hit=1");
  add("armed_other_site", best_point_seconds(reps, iters));

  // Armed on this site with a trigger that never decides to fire: the
  // full per-rule bookkeeping without any action.
  sva::fault::configure(std::string(kBenchSite) + ":error:hit=1000000000");
  add("armed_no_fire", best_point_seconds(reps, iters));

  sva::fault::reset();

  emit_table(opts, "micro_fault", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"micro_fault", "micro",
                          "fault-point traversal cost (disarmed/armed-miss/armed-no-fire)",
                          &run_micro_fault};

}  // namespace
}  // namespace svabench
