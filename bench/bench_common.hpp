// Shared harness for the figure-reproduction benchmarks.
//
// Every figure binary sweeps processor counts P ∈ {1,2,4,8,16,32} over
// the two dataset families at three problem sizes whose ratios match the
// paper's (PubMed 2.75:6.67:16.44 GB, TREC 1:4:8.21 GB).  Absolute sizes
// are scaled down for the single-core host; set SVA_BENCH_S1_MB to grow
// them (both families share the knob; TREC's S1 is 3/4 of PubMed's, close
// to the paper's 1 GB vs 2.75 GB relation in spirit while keeping runtime
// in budget).
//
// Results are printed as aligned tables mirroring the paper's series and
// also written to bench_results/<figure>.csv.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/stringutil.hpp"
#include "sva/util/table.hpp"

namespace svabench {

inline const std::vector<int>& proc_counts() {
  static const std::vector<int> kProcs = {1, 2, 4, 8, 16, 32};
  return kProcs;
}

inline std::size_t s1_megabytes() {
  if (const char* env = std::getenv("SVA_BENCH_S1_MB")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 3;  // keeps a full figure sweep around a couple of minutes
}

inline sva::corpus::CorpusSpec spec_for(sva::corpus::CorpusKind kind, int size_index) {
  const std::size_t s1 = s1_megabytes() << 20;
  return kind == sva::corpus::CorpusKind::kPubMedLike
             ? sva::corpus::pubmed_like_spec(size_index, s1)
             : sva::corpus::trec_like_spec(size_index, (s1 * 3) / 4);
}

/// Paper-analog labels for the three problem sizes.
inline std::string size_label(sva::corpus::CorpusKind kind, int size_index) {
  static const char* kPubmed[] = {"S1(~2.75GB-analog)", "S2(~6.67GB-analog)",
                                  "S3(~16.44GB-analog)"};
  static const char* kTrec[] = {"S1(~1GB-analog)", "S2(~4GB-analog)", "S3(~8.21GB-analog)"};
  return kind == sva::corpus::CorpusKind::kPubMedLike ? kPubmed[size_index]
                                                      : kTrec[size_index];
}

/// Corpus cache: generating S3 repeatedly would dominate the harness.
inline const sva::corpus::SourceSet& corpus_for(sva::corpus::CorpusKind kind, int size_index) {
  static std::map<std::pair<int, int>, std::unique_ptr<sva::corpus::SourceSet>> cache;
  const auto key = std::make_pair(static_cast<int>(kind), size_index);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto set = std::make_unique<sva::corpus::SourceSet>(
        sva::corpus::generate_corpus(spec_for(kind, size_index)));
    it = cache.emplace(key, std::move(set)).first;
  }
  return *it->second;
}

/// Engine configuration used by all figure harnesses (matched across
/// datasets; topic space sized for the scaled-down corpora).
inline sva::engine::EngineConfig bench_engine_config() {
  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 800;
  config.kmeans.k = 16;
  config.kmeans.max_iterations = 32;
  return config;
}

/// One pipeline execution at (kind, size, P) under the Itanium-cluster
/// performance model.
inline sva::engine::PipelineRun run_engine(sva::corpus::CorpusKind kind, int size_index,
                                           int nprocs) {
  return sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(),
                                   corpus_for(kind, size_index), bench_engine_config());
}

inline void emit(const std::string& figure, const sva::Table& table) {
  std::cout << table.to_ascii() << '\n';
  const std::string path = "bench_results/" + figure + ".csv";
  table.write_csv(path);
  std::cout << "wrote " << path << "\n\n";
}

inline void banner(const std::string& title) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "(modeled cluster time: measured per-rank compute + LogGP comm model;\n"
               " shapes are the reproduction target, not absolute values)\n\n";
}

}  // namespace svabench
