#include "registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <tuple>

#include "sva/ga/comm_model.hpp"
#include "sva/util/error.hpp"

namespace svabench {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(BenchInfo info) {
  if (find(info.name) != nullptr) {
    throw sva::InvalidArgument("bench registry: duplicate name " + info.name);
  }
  entries_.push_back(std::move(info));
}

const BenchInfo* Registry::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::vector<const BenchInfo*> Registry::sorted() const {
  std::vector<const BenchInfo*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(), [](const BenchInfo* a, const BenchInfo* b) {
    return std::tie(a->kind, a->name) < std::tie(b->kind, b->name);
  });
  return out;
}

Registrar::Registrar(std::string name, std::string kind, std::string summary, BenchFn fn) {
  Registry::instance().add({std::move(name), std::move(kind), std::move(summary), fn});
}

std::size_t default_s1_bytes() {
  if (const char* env = std::getenv("SVA_BENCH_S1_MB")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v) << 20;
  }
  return 3 << 20;
}

sva::corpus::CorpusSpec spec_for(sva::corpus::CorpusKind kind, int size_index,
                                 const BenchOptions& opts) {
  // TREC's S1 is 3/4 of PubMed's, close to the paper's 1 GB vs 2.75 GB
  // relation in spirit while keeping runtime in budget.
  return kind == sva::corpus::CorpusKind::kPubMedLike
             ? sva::corpus::pubmed_like_spec(size_index, opts.s1_bytes)
             : sva::corpus::trec_like_spec(size_index, (opts.s1_bytes * 3) / 4);
}

std::string size_label(sva::corpus::CorpusKind kind, int size_index) {
  static const char* kPubmed[] = {"S1(~2.75GB-analog)", "S2(~6.67GB-analog)",
                                  "S3(~16.44GB-analog)"};
  static const char* kTrec[] = {"S1(~1GB-analog)", "S2(~4GB-analog)", "S3(~8.21GB-analog)"};
  return kind == sva::corpus::CorpusKind::kPubMedLike ? kPubmed[size_index]
                                                      : kTrec[size_index];
}

const sva::corpus::SourceSet& corpus_for(sva::corpus::CorpusKind kind, int size_index,
                                         const BenchOptions& opts) {
  static std::map<std::tuple<int, int, std::size_t>,
                  std::unique_ptr<sva::corpus::SourceSet>>
      cache;
  const auto key = std::make_tuple(static_cast<int>(kind), size_index, opts.s1_bytes);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto set = std::make_unique<sva::corpus::SourceSet>(
        sva::corpus::generate_corpus(spec_for(kind, size_index, opts)));
    it = cache.emplace(key, std::move(set)).first;
  }
  return *it->second;
}

sva::engine::EngineConfig bench_engine_config() {
  sva::engine::EngineConfig config;
  config.topicality.num_major_terms = 800;
  config.kmeans.k = 16;
  config.kmeans.max_iterations = 32;
  return config;
}

sva::engine::PipelineRun run_engine(sva::corpus::CorpusKind kind, int size_index, int nprocs,
                                    const BenchOptions& opts) {
  return sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(),
                                   corpus_for(kind, size_index, opts), bench_engine_config());
}

void emit_table(const BenchOptions& opts, const std::string& figure, const sva::Table& table) {
  std::cout << table.to_ascii() << '\n';
  const std::filesystem::path path = opts.out_dir / (figure + ".csv");
  std::filesystem::create_directories(opts.out_dir);
  table.write_csv(path.string());
  std::cout << "wrote " << path.string() << "\n\n";
}

void banner(const std::string& title) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "(modeled cluster time: measured per-rank compute + LogGP comm model;\n"
               " shapes are the reproduction target, not absolute values)\n\n";
}

}  // namespace svabench
