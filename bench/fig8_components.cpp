// Figure 8: per-component speedup for PubMed and TREC at three problem
// sizes: scanning, indexing, signature generation (topic + AM + DocVec),
// clustering & projection.
//
// Paper's claim: every component scales close to linearly in its own
// right, for every size, on both datasets.
#include "registry.hpp"

namespace svabench {
namespace {

report::Report run_fig8(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Figure 8: per-component speedups (both datasets, 3 sizes)");

  report::Report out;
  out.name = "fig8_components";
  out.kind = "figure";
  out.title = "Per-component speedups, both datasets, 3 sizes";
  json::Value series = json::Value::array();

  sva::Table table({"dataset", "size", "procs", "scan_speedup", "index_speedup",
                    "siggen_speedup", "clusproj_speedup"});

  for (CorpusKind kind : {CorpusKind::kPubMedLike, CorpusKind::kTrecLike}) {
    for (int size : opts.size_indices) {
      const auto& sources = corpus_for(kind, size, opts);
      const std::string key =
          sva::corpus::corpus_kind_name(kind) + "/" + size_label(kind, size);
      json::Value entry = json::Value::object();
      entry["dataset"] = sva::corpus::corpus_kind_name(kind);
      entry["size"] = size_label(kind, size);
      json::Value runs = json::Value::array();

      double base_scan = 0.0, base_index = 0.0, base_sig = 0.0, base_clusproj = 0.0;
      for (int nprocs : opts.procs) {
        const auto run = run_engine(kind, size, nprocs, opts);
        const auto& t = run.result.timings;
        if (nprocs == opts.procs.front()) {
          base_scan = t.scan;
          base_index = t.index;
          base_sig = t.signature_generation();
          base_clusproj = t.clusproj;
        }
        json::Value record = report::run_record(out, key, nprocs, run, sources.total_bytes());
        json::Value speedups = json::Value::object();
        speedups["scan"] = base_scan / t.scan;
        speedups["index"] = base_index / t.index;
        speedups["siggen"] = base_sig / t.signature_generation();
        speedups["clusproj"] = base_clusproj / t.clusproj;
        record["component_speedups"] = std::move(speedups);
        runs.push_back(std::move(record));
        table.add_row({sva::corpus::corpus_kind_name(kind), size_label(kind, size),
                       sva::Table::num(static_cast<long long>(nprocs)),
                       sva::Table::num(base_scan / t.scan, 2),
                       sva::Table::num(base_index / t.index, 2),
                       sva::Table::num(base_sig / t.signature_generation(), 2),
                       sva::Table::num(base_clusproj / t.clusproj, 2)});
      }
      entry["runs"] = std::move(runs);
      series.push_back(std::move(entry));
    }
  }
  emit_table(opts, "fig8_component_speedups", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"fig8_components", "figure",
                          "per-component speedups (scan/index/siggen/clusproj)", &run_fig8};

}  // namespace
}  // namespace svabench
