// Figure 8: per-component speedup for PubMed and TREC at three problem
// sizes: scanning, indexing, signature generation (topic + AM + DocVec),
// clustering & projection.
//
// Paper's claim: every component scales close to linearly in its own
// right, for every size, on both datasets.
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner("Figure 8: per-component speedups (both datasets, 3 sizes)");

  sva::Table table({"dataset", "size", "procs", "scan_speedup", "index_speedup",
                    "siggen_speedup", "clusproj_speedup"});

  for (CorpusKind kind : {CorpusKind::kPubMedLike, CorpusKind::kTrecLike}) {
    for (int size = 0; size < 3; ++size) {
      double base_scan = 0.0, base_index = 0.0, base_sig = 0.0, base_clusproj = 0.0;
      for (int nprocs : svabench::proc_counts()) {
        const auto run = svabench::run_engine(kind, size, nprocs);
        const auto& t = run.result.timings;
        if (nprocs == 1) {
          base_scan = t.scan;
          base_index = t.index;
          base_sig = t.signature_generation();
          base_clusproj = t.clusproj;
        }
        table.add_row({sva::corpus::corpus_kind_name(kind),
                       svabench::size_label(kind, size),
                       sva::Table::num(static_cast<long long>(nprocs)),
                       sva::Table::num(base_scan / t.scan, 2),
                       sva::Table::num(base_index / t.index, 2),
                       sva::Table::num(base_sig / t.signature_generation(), 2),
                       sva::Table::num(base_clusproj / t.clusproj, 2)});
      }
    }
  }
  svabench::emit("fig8_component_speedups", table);
  return 0;
}
