// Figure 9: effectiveness of dynamic load balancing in the indexing
// component.
//
// Paper's claim (§3.3, §4.2): the inversion workload is inherently
// imbalanced — "although the sources were equally distributed to the
// processes, the term distributions will not be" — and the fixed-size-
// chunking task queue over GA atomics keeps every processor busy, so the
// indexing component stays "scalable and well balanced" as problem sizes
// and processor counts grow.
//
// We reproduce it by running only the scan + indexing stages on the
// heavy-tailed TREC-like corpus under three schedules (no balancing /
// the paper's owner-first GA queue / master-worker) and reporting the
// per-rank busy-time imbalance (max/mean; 1.0 = perfect).
#include <algorithm>
#include <memory>

#include "registry.hpp"
#include "sva/index/inverted_index.hpp"

namespace svabench {
namespace {

report::Report run_fig9(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Figure 9: dynamic load balancing in the indexing component");

  report::Report out;
  out.name = "fig9_loadbalance";
  out.kind = "figure";
  out.title = "Dynamic load balancing in the indexing component";

  // Heavy-tailed TREC-like corpus: a visible fraction of giant pages is
  // exactly the "term distributions will not be [equally] distributed"
  // condition the paper describes — static field shares then straggle on
  // whichever rank drew the giants.  Smoke keeps S1 to stay in budget.
  const int size_index = opts.smoke ? 0 : 1;
  auto spec = spec_for(CorpusKind::kTrecLike, size_index, opts);
  spec.giant_doc_fraction = 0.05;
  const auto sources = sva::corpus::generate_corpus(spec);

  const auto schedules = {sva::ga::Scheduling::kStatic, sva::ga::Scheduling::kOwnerFirst,
                          sva::ga::Scheduling::kMasterWorker};

  sva::Table table({"scheduling", "procs", "index_modeled_s", "imbalance_max_over_mean",
                    "loads_min", "loads_max"});
  json::Value series = json::Value::array();

  for (const auto scheduling : schedules) {
    json::Value entry = json::Value::object();
    entry["scheduling"] = sva::ga::scheduling_name(scheduling);
    json::Value runs = json::Value::array();
    for (int nprocs : opts.procs) {
      auto rep = std::make_shared<sva::index::LoadBalanceReport>();
      auto index_time = std::make_shared<double>(0.0);
      sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
        const auto scan =
            sva::text::scan_sources(ctx, sources, bench_engine_config().tokenizer);
        ctx.barrier();
        const double t0 = ctx.vtime_raw();
        sva::index::IndexingConfig config;
        config.scheduling = scheduling;
        // Fine loads so balance is limited by the schedule, not by the
        // chunk granularity (cf. ablate_chunksize for that trade-off).
        config.chunk_fields = 16;
        const auto result = sva::index::build_inverted_index(
            ctx, scan.forward, scan.vocabulary->size(), config);
        ctx.barrier();
        if (ctx.rank() == 0) {
          *rep = result.load_balance;
          *index_time = ctx.vtime_raw() - t0;
        }
      });

      std::int64_t loads_min = rep->loads_claimed.empty() ? 0 : rep->loads_claimed[0];
      std::int64_t loads_max = loads_min;
      for (auto l : rep->loads_claimed) {
        loads_min = std::min(loads_min, l);
        loads_max = std::max(loads_max, l);
      }
      table.add_row({sva::ga::scheduling_name(scheduling),
                     sva::Table::num(static_cast<long long>(nprocs)),
                     sva::Table::num(*index_time, 3), sva::Table::num(rep->imbalance(), 3),
                     sva::Table::num(static_cast<long long>(loads_min)),
                     sva::Table::num(static_cast<long long>(loads_max))});

      json::Value record = json::Value::object();
      record["procs"] = nprocs;
      record["index_modeled_s"] = *index_time;
      record["imbalance_max_over_mean"] = rep->imbalance();
      record["loads_min"] = static_cast<std::int64_t>(loads_min);
      record["loads_max"] = static_cast<std::int64_t>(loads_max);
      runs.push_back(std::move(record));
    }
    entry["runs"] = std::move(runs);
    series.push_back(std::move(entry));
  }
  emit_table(opts, "fig9_load_balance", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"fig9_loadbalance", "figure",
                          "indexing load balance under three schedules", &run_fig9};

}  // namespace
}  // namespace svabench
