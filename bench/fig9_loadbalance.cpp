// Figure 9: effectiveness of dynamic load balancing in the indexing
// component.
//
// Paper's claim (§3.3, §4.2): the inversion workload is inherently
// imbalanced — "although the sources were equally distributed to the
// processes, the term distributions will not be" — and the fixed-size-
// chunking task queue over GA atomics keeps every processor busy, so the
// indexing component stays "scalable and well balanced" as problem sizes
// and processor counts grow.
//
// We reproduce it by running only the scan + indexing stages on the
// heavy-tailed TREC-like corpus under three schedules (no balancing /
// the paper's owner-first GA queue / master-worker) and reporting the
// per-rank busy-time imbalance (max/mean; 1.0 = perfect).
#include "sva/index/inverted_index.hpp"
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner("Figure 9: dynamic load balancing in the indexing component");

  // Heavy-tailed TREC-like corpus: a visible fraction of giant pages is
  // exactly the "term distributions will not be [equally] distributed"
  // condition the paper describes — static field shares then straggle on
  // whichever rank drew the giants.
  auto spec = svabench::spec_for(CorpusKind::kTrecLike, 1);
  spec.giant_doc_fraction = 0.05;
  const auto sources = sva::corpus::generate_corpus(spec);

  const auto schedules = {sva::ga::Scheduling::kStatic, sva::ga::Scheduling::kOwnerFirst,
                          sva::ga::Scheduling::kMasterWorker};

  sva::Table table({"scheduling", "procs", "index_modeled_s", "imbalance_max_over_mean",
                    "loads_min", "loads_max"});

  for (const auto scheduling : schedules) {
    for (int nprocs : svabench::proc_counts()) {
      auto report = std::make_shared<sva::index::LoadBalanceReport>();
      auto index_time = std::make_shared<double>(0.0);
      sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
        const auto scan =
            sva::text::scan_sources(ctx, sources, svabench::bench_engine_config().tokenizer);
        ctx.barrier();
        const double t0 = ctx.vtime_raw();
        sva::index::IndexingConfig config;
        config.scheduling = scheduling;
        // Fine loads so balance is limited by the schedule, not by the
        // chunk granularity (cf. ablate_chunksize for that trade-off).
        config.chunk_fields = 16;
        const auto result = sva::index::build_inverted_index(
            ctx, scan.forward, scan.vocabulary->size(), config);
        ctx.barrier();
        if (ctx.rank() == 0) {
          *report = result.load_balance;
          *index_time = ctx.vtime_raw() - t0;
        }
      });

      std::int64_t loads_min = report->loads_claimed.empty() ? 0 : report->loads_claimed[0];
      std::int64_t loads_max = loads_min;
      for (auto l : report->loads_claimed) {
        loads_min = std::min(loads_min, l);
        loads_max = std::max(loads_max, l);
      }
      table.add_row({sva::ga::scheduling_name(scheduling),
                     sva::Table::num(static_cast<long long>(nprocs)),
                     sva::Table::num(*index_time, 3),
                     sva::Table::num(report->imbalance(), 3),
                     sva::Table::num(static_cast<long long>(loads_min)),
                     sva::Table::num(static_cast<long long>(loads_max))});
    }
  }
  svabench::emit("fig9_load_balance", table);
  return 0;
}
