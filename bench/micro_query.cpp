// Microbenchmark for the serving query plane: one engine pass exports a
// model bundle; a Session then answers a fixed mixed workload (similarity
// + cluster-summary queries) two ways at each processor count —
//
//   single:  N one-shot Session calls, each paying its own collectives;
//   batched: one Session::run_batch sweep (one probe exchange, one fused
//            scan, one merge, one summary reduction).
//
// best_s per (plane, P) is the host wall-clock serving figure the CI
// wall gate tracks; the determinism ledger records an FNV-1a digest of
// every result set per (plane, P), so a cross-P divergence — or any
// drift of the query answers — fails the smoke gate.  The benchmark
// itself also fails if the batched plane's answers differ from the
// single-query plane's: they run the same fused core and must be
// bit-identical.
#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "registry.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/digest.hpp"
#include "sva/query/session.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

using sva::query::Query;
using sva::query::QueryResult;

/// Canonical byte digest of a result set: doc ids and exact double bit
/// patterns, so two digests agree iff the answers are bit-identical.
std::uint64_t digest_results(const std::vector<QueryResult>& results) {
  sva::ByteWriter w;
  w.u64(results.size());
  for (const auto& r : results) {
    w.u64(static_cast<std::uint64_t>(r.kind));
    w.u64(r.hits.size());
    for (const auto& h : r.hits) {
      w.u64(h.doc_id);
      w.f64(h.similarity);
    }
    const auto& s = r.summary;
    w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(s.cluster)));
    w.u64(static_cast<std::uint64_t>(s.size));
    w.f64(s.cohesion);
    w.u64(s.representatives.size());
    for (const auto d : s.representatives) w.u64(d);
    for (const auto& t : s.top_terms) w.str(t);
  }
  return sva::engine::fnv1a64(w.bytes.data(), w.bytes.size());
}

/// The fixed mixed workload: 3/4 "more like this" probes spread across
/// the document range, 1/4 theme summaries cycling the clusters.
std::vector<Query> make_workload(std::uint64_t num_docs, std::size_t num_clusters,
                                 std::size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 4 == 3) {
      queries.push_back(
          Query::cluster_summary(static_cast<int>(i % num_clusters), /*reps=*/5));
    } else {
      const std::uint64_t doc = (i * num_docs) / count;  // spread, deterministic
      queries.push_back(Query::similar_doc(doc, /*top_k=*/8));
    }
  }
  return queries;
}

struct PlaneMeasurement {
  double single_s = 0.0;
  double batch_s = 0.0;
  std::uint64_t single_digest = 0;
  std::uint64_t batch_digest = 0;
};

/// Opens the bundle at P ranks and times both planes over `queries`,
/// best-of-reps, barrier-fenced (the Session::open cost is excluded —
/// a serving process opens once and answers many).
PlaneMeasurement measure_planes(const std::filesystem::path& bundle, int nprocs, int reps,
                                const std::vector<Query>& queries) {
  PlaneMeasurement out;
  sva::ga::spmd_run(nprocs, [&](sva::ga::Context& ctx) {
    auto session = sva::query::Session::open(ctx, bundle);

    auto run_single = [&]() {
      std::vector<QueryResult> results(queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const Query& q = queries[i];
        results[i].kind = q.kind;
        switch (q.kind) {
          case Query::Kind::kClusterSummary:
            results[i].summary = session.cluster_summary(q.cluster, q.k);
            break;
          case Query::Kind::kSimilarByDoc:
            results[i].hits = session.similar(q.doc_id, q.k);
            break;
          case Query::Kind::kSimilarByProbe:
            results[i].hits = session.similar(std::span<const double>(q.probe), q.k);
            break;
        }
      }
      return results;
    };

    // Digests once, outside the timed reps.
    const auto single_results = run_single();
    const auto batch_results = session.run_batch(queries);
    if (ctx.rank() == 0) {
      out.single_digest = digest_results(single_results);
      out.batch_digest = digest_results(batch_results);
    }

    for (int rep = 0; rep < reps; ++rep) {
      ctx.barrier();
      sva::WallTimer timer;
      (void)run_single();
      ctx.barrier();
      const double elapsed = timer.elapsed();
      if (ctx.rank() == 0 && (rep == 0 || elapsed < out.single_s)) out.single_s = elapsed;
    }
    for (int rep = 0; rep < reps; ++rep) {
      ctx.barrier();
      sva::WallTimer timer;
      (void)session.run_batch(queries);
      ctx.barrier();
      const double elapsed = timer.elapsed();
      if (ctx.rank() == 0 && (rep == 0 || elapsed < out.batch_s)) out.batch_s = elapsed;
    }
  });
  return out;
}

report::Report run_micro_query(const BenchOptions& opts) {
  banner("Micro: sessionized query serving (single vs batched plane)");

  report::Report out;
  out.name = "micro_query";
  out.kind = "micro";
  out.title = "Session query serving: single-query vs batched plane (host wall-clock)";

  // One engine pass builds the served artifact.
  const auto& sources = corpus_for(sva::corpus::CorpusKind::kPubMedLike, 0, opts);
  const sva::engine::EngineConfig config = bench_engine_config();
  const std::filesystem::path bundle = opts.out_dir / "micro_query.svab";
  std::filesystem::create_directories(opts.out_dir);
  sva::ga::spmd_run(1, [&](sva::ga::Context& ctx) {
    const auto result = sva::engine::run_text_engine(ctx, sources, config);
    sva::engine::export_bundle(ctx, result, config, bundle);
  });

  std::uint64_t num_docs = 0;
  std::size_t num_clusters = 0;
  sva::ga::spmd_run(1, [&](sva::ga::Context& ctx) {
    const auto session = sva::query::Session::open(ctx, bundle);
    num_docs = session.num_documents();
    num_clusters = session.num_clusters();
  });

  const std::size_t workload = opts.smoke ? 16 : 48;
  const int reps = opts.smoke ? 3 : 8;
  const auto queries = make_workload(num_docs, num_clusters, workload);

  sva::Table table({"plane", "config", "best_s", "queries_per_s", "speedup"});
  json::Value series = json::Value::array();

  for (const int nprocs : {1, 2, 4}) {
    const PlaneMeasurement m = measure_planes(bundle, nprocs, reps, queries);
    sva::require(m.single_digest == m.batch_digest,
                 "micro_query: batched plane diverged from single-query plane at P=" +
                     std::to_string(nprocs));

    const std::string config_key =
        "P=" + std::to_string(nprocs) + " Q=" + std::to_string(workload);
    const double speedup = m.batch_s > 0.0 ? m.single_s / m.batch_s : 0.0;
    auto add = [&](const std::string& plane, double seconds, double plane_speedup) {
      table.add_row({plane, config_key, sva::Table::num(seconds, 5),
                     sva::Table::num(seconds > 0.0 ? workload / seconds : 0.0, 1),
                     sva::Table::num(plane_speedup, 2)});
      json::Value record = json::Value::object();
      record["primitive"] = plane;
      record["config"] = config_key;
      record["best_s"] = seconds;
      record["queries"] = workload;
      record["queries_per_s"] = seconds > 0.0 ? workload / seconds : 0.0;
      if (plane_speedup > 0.0) record["batch_speedup"] = plane_speedup;
      series.push_back(std::move(record));
    };
    add("single_queries", m.single_s, 0.0);
    add("batched", m.batch_s, speedup);

    // Cross-P identity of the served answers, per plane.
    out.record_checksum("single Q=" + std::to_string(workload), nprocs, m.single_digest);
    out.record_checksum("batch Q=" + std::to_string(workload), nprocs, m.batch_digest);
  }

  emit_table(opts, "micro_query", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  out.data["workload_queries"] = workload;
  return out;
}

const Registrar registrar{"micro_query", "micro",
                          "Session serving plane: single vs batched query throughput",
                          &run_micro_query};

}  // namespace
}  // namespace svabench
