// Benchmark registry + shared harness for the unified sva_bench driver.
//
// Every figure reproduction, ablation and microbenchmark registers itself
// here (one Registrar per translation unit) and is invoked through the
// single `sva_bench` binary — `--list` to enumerate, `--run <name>` to
// execute, `--smoke` for the tiny-size CI sweep.  A benchmark is a pure
// function BenchOptions -> report::Report; the driver owns argument
// parsing, JSON emission and the cross-P determinism verdict.
//
// The harness helpers (corpus cache, engine config, size labels, table
// emission) encode the paper's experimental setup: every figure sweeps
// processor counts over the two dataset families at three problem sizes
// whose ratios match the paper's (PubMed 2.75:6.67:16.44 GB, TREC
// 1:4:8.21 GB), scaled down for a single-core host.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "report.hpp"
#include "sva/corpus/generator.hpp"
#include "sva/engine/pipeline.hpp"
#include "sva/util/table.hpp"

namespace svabench {

/// Default S1 size: SVA_BENCH_S1_MB env override, else 3 MiB (keeps a
/// full figure sweep around a couple of minutes).
std::size_t default_s1_bytes();

/// Resolved run options shared by every benchmark.
struct BenchOptions {
  /// Processor counts for the figure P-sweeps.
  std::vector<int> procs = {1, 2, 4, 8, 16, 32};
  /// Problem sizes to sweep (indices into the S1/S2/S3 presets).
  std::vector<int> size_indices = {0, 1, 2};
  /// Tiny-size quick pass: benchmarks shrink their secondary sweeps too.
  bool smoke = false;
  /// PubMed-like S1 size in bytes (TREC-like S1 is 3/4 of it).
  std::size_t s1_bytes = default_s1_bytes();
  /// Where BENCH_*.json and the CSV tables land.  Never cwd-relative
  /// output scatter: everything the subsystem writes goes through this.
  std::filesystem::path out_dir = "build/bench_results";
};

using BenchFn = report::Report (*)(const BenchOptions&);

struct BenchInfo {
  std::string name;     ///< registry key and JSON file stem
  std::string kind;     ///< "figure" | "ablation" | "micro"
  std::string summary;  ///< one-liner for --list
  BenchFn fn = nullptr;
};

class Registry {
 public:
  static Registry& instance();

  void add(BenchInfo info);
  [[nodiscard]] const BenchInfo* find(std::string_view name) const;
  /// All entries sorted by (kind, name) for stable --list output.
  [[nodiscard]] std::vector<const BenchInfo*> sorted() const;

 private:
  std::vector<BenchInfo> entries_;
};

/// One static instance per benchmark translation unit.
struct Registrar {
  Registrar(std::string name, std::string kind, std::string summary, BenchFn fn);
};

// ---- shared harness -----------------------------------------------------

/// The paper-analog corpus spec at (kind, size_index) under `opts`.
sva::corpus::CorpusSpec spec_for(sva::corpus::CorpusKind kind, int size_index,
                                 const BenchOptions& opts);

/// Paper-analog labels for the three problem sizes.
std::string size_label(sva::corpus::CorpusKind kind, int size_index);

/// Corpus cache: generating S3 repeatedly would dominate the harness.
/// Keyed by the full spec, so differently-sized smoke runs never collide.
const sva::corpus::SourceSet& corpus_for(sva::corpus::CorpusKind kind, int size_index,
                                         const BenchOptions& opts);

/// Engine configuration used by all figure harnesses (matched across
/// datasets; topic space sized for the scaled-down corpora).
sva::engine::EngineConfig bench_engine_config();

/// One pipeline execution at (kind, size, P) under the Itanium-cluster
/// performance model.
sva::engine::PipelineRun run_engine(sva::corpus::CorpusKind kind, int size_index, int nprocs,
                                    const BenchOptions& opts);

/// Prints the ASCII table and writes <out_dir>/<figure>.csv.
void emit_table(const BenchOptions& opts, const std::string& figure, const sva::Table& table);

void banner(const std::string& title);

}  // namespace svabench
