// Ablation: task-queue strategy for the indexing placement phase.
//
// §3.3 argues that dynamic load balancing via GA atomic fetch-and-
// increment "involves only a few lines of code" and avoids the
// master–worker bottleneck where "management of the task queue by a
// single master processor becomes a bottleneck" as P grows.  The
// bottleneck is a *rate* phenomenon — it appears when claim requests
// arrive faster than one master can serially service them — so the sweep
// uses single-field loads (maximum queue traffic) and extends to P = 64:
// the master-worker curve flattens as the master saturates while the GA
// atomic queues keep scaling.
#include "sva/index/inverted_index.hpp"
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner(
      "Ablation: task-queue strategy (indexing phase, TREC-like S1, 1-field loads)");

  const auto& sources = svabench::corpus_for(CorpusKind::kTrecLike, 0);

  sva::Table table({"scheduling", "procs", "index_modeled_s", "speedup_vs_p1"});
  for (const auto scheduling :
       {sva::ga::Scheduling::kStatic, sva::ga::Scheduling::kOwnerFirst,
        sva::ga::Scheduling::kAtomicCounter, sva::ga::Scheduling::kMasterWorker}) {
    double p1_time = 0.0;
    for (int nprocs : {1, 2, 4, 8, 16, 32, 64}) {
      auto index_time = std::make_shared<double>(0.0);
      sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
        const auto scan =
            sva::text::scan_sources(ctx, sources, svabench::bench_engine_config().tokenizer);
        ctx.barrier();
        const double t0 = ctx.vtime_raw();
        sva::index::IndexingConfig config;
        config.scheduling = scheduling;
        config.chunk_fields = 1;  // maximum queue-request rate
        (void)sva::index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size(),
                                               config);
        ctx.barrier();
        if (ctx.rank() == 0) *index_time = ctx.vtime_raw() - t0;
      });
      if (nprocs == 1) p1_time = *index_time;
      table.add_row({sva::ga::scheduling_name(scheduling),
                     sva::Table::num(static_cast<long long>(nprocs)),
                     sva::Table::num(*index_time, 3),
                     sva::Table::num(p1_time / *index_time, 2)});
    }
  }
  svabench::emit("ablate_taskqueue", table);
  return 0;
}
