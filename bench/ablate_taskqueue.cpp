// Ablation: task-queue strategy for the indexing placement phase.
//
// §3.3 argues that dynamic load balancing via GA atomic fetch-and-
// increment "involves only a few lines of code" and avoids the
// master–worker bottleneck where "management of the task queue by a
// single master processor becomes a bottleneck" as P grows.  The
// bottleneck is a *rate* phenomenon — it appears when claim requests
// arrive faster than one master can serially service them — so the sweep
// uses single-field loads (maximum queue traffic) and extends to P = 64:
// the master-worker curve flattens as the master saturates while the GA
// atomic queues keep scaling.
#include <memory>

#include "registry.hpp"
#include "sva/index/inverted_index.hpp"

namespace svabench {
namespace {

report::Report run_ablate_taskqueue(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Ablation: task-queue strategy (indexing phase, TREC-like S1, 1-field loads)");

  report::Report out;
  out.name = "ablate_taskqueue";
  out.kind = "ablation";
  out.title = "Task-queue strategy under maximum claim traffic";

  const auto& sources = corpus_for(CorpusKind::kTrecLike, 0, opts);
  // The master bottleneck is a rate phenomenon: extend past the figure
  // sweep to P = 64 (smoke keeps the configured tiny sweep).
  std::vector<int> procs = opts.procs;
  if (!opts.smoke && (procs.empty() || procs.back() < 64)) procs.push_back(64);

  sva::Table table({"scheduling", "procs", "index_modeled_s", "speedup_vs_p1"});
  json::Value series = json::Value::array();
  for (const auto scheduling :
       {sva::ga::Scheduling::kStatic, sva::ga::Scheduling::kOwnerFirst,
        sva::ga::Scheduling::kAtomicCounter, sva::ga::Scheduling::kMasterWorker}) {
    json::Value entry = json::Value::object();
    entry["scheduling"] = sva::ga::scheduling_name(scheduling);
    json::Value runs = json::Value::array();
    double p1_time = 0.0;
    for (int nprocs : procs) {
      auto index_time = std::make_shared<double>(0.0);
      sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
        const auto scan =
            sva::text::scan_sources(ctx, sources, bench_engine_config().tokenizer);
        ctx.barrier();
        const double t0 = ctx.vtime_raw();
        sva::index::IndexingConfig config;
        config.scheduling = scheduling;
        config.chunk_fields = 1;  // maximum queue-request rate
        (void)sva::index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size(),
                                               config);
        ctx.barrier();
        if (ctx.rank() == 0) *index_time = ctx.vtime_raw() - t0;
      });
      if (nprocs == procs.front()) p1_time = *index_time;
      table.add_row({sva::ga::scheduling_name(scheduling),
                     sva::Table::num(static_cast<long long>(nprocs)),
                     sva::Table::num(*index_time, 3),
                     sva::Table::num(p1_time / *index_time, 2)});

      json::Value record = json::Value::object();
      record["procs"] = nprocs;
      record["index_modeled_s"] = *index_time;
      record["speedup_vs_p1"] = p1_time / *index_time;
      runs.push_back(std::move(record));
    }
    entry["runs"] = std::move(runs);
    series.push_back(std::move(entry));
  }
  emit_table(opts, "ablate_taskqueue", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"ablate_taskqueue", "ablation",
                          "task-queue scheduling sweep (GA atomics vs master-worker)",
                          &run_ablate_taskqueue};

}  // namespace
}  // namespace svabench
