// Unified benchmark driver.
//
//   sva_bench --list                      enumerate figures/ablations/micros
//   sva_bench --run fig5_overall[,name…]  run selected benchmarks
//   sva_bench --smoke                     run everything at tiny size (CI)
//   sva_bench --procs 1,4                 override the P-sweep
//   sva_bench --out-dir DIR               where BENCH_*.json + CSVs land
//   sva_bench --s1-mb N                   PubMed-like S1 megabytes
//
// Every benchmark emits a schema-versioned BENCH_<name>.json under the
// output directory.  The driver aggregates each report's determinism
// ledger — the EngineResult checksum per (configuration, P) — and exits
// nonzero when any configuration's checksum varies across processor
// counts, which is how CI turns "identical products regardless of
// processor count" into a gate.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "registry.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: sva_bench [--list] [--run NAME[,NAME...]] [--smoke]\n"
      "                 [--procs P[,P...]] [--sizes I[,I...]] [--s1-mb N]\n"
      "                 [--out-dir DIR]\n"
      "\n"
      "  --list        list registered benchmarks and exit\n"
      "  --run NAMES   run the named benchmarks (repeatable, comma-separated)\n"
      "  --smoke       run every benchmark at tiny size, P={1,4} (CI gate)\n"
      "  --procs LIST  processor counts for the figure sweeps (default 1,2,4,8,16,32)\n"
      "  --sizes LIST  problem-size indices 0..2 to sweep (default 0,1,2)\n"
      "  --s1-mb N     PubMed-like S1 megabytes (default $SVA_BENCH_S1_MB or 3)\n"
      "  --out-dir DIR output directory (default build/bench_results/)\n";
}

std::vector<int> parse_int_list(const std::string& arg, const char* flag, int min_value = 1) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string piece = arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (piece.empty()) {
      std::cerr << "sva_bench: empty entry in " << flag << " list\n";
      std::exit(2);
    }
    char* end = nullptr;
    const long v = std::strtol(piece.c_str(), &end, 10);
    if (end != piece.c_str() + piece.size() || v < min_value) {
      std::cerr << "sva_bench: bad value '" << piece << "' for " << flag << "\n";
      std::exit(2);
    }
    out.push_back(static_cast<int>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) {
    std::cerr << "sva_bench: " << flag << " needs at least one value\n";
    std::exit(2);
  }
  return out;
}

void split_names(const std::string& arg, std::vector<std::string>& out) {
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string piece =
        arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

void print_inventory(std::ostream& out) {
  out << "registered benchmarks:\n";
  for (const svabench::BenchInfo* info : svabench::Registry::instance().sorted()) {
    out << "  " << info->kind << "  " << info->name;
    for (std::size_t pad = info->name.size(); pad < 24; ++pad) out << ' ';
    out << info->summary << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svabench;

  BenchOptions opts;
  bool list = false;
  bool smoke = false;
  bool procs_given = false;
  bool sizes_given = false;
  bool s1_given = false;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "sva_bench: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--run") {
      const std::string spec = next();
      const std::size_t before = names.size();
      split_names(spec, names);
      if (names.size() == before) {
        // A --run that selects nothing must not fall through to the
        // "nothing selected" listing with a zero exit.
        std::cerr << "sva_bench: --run '" << spec << "' selects no benchmarks\n";
        print_inventory(std::cerr);
        return 2;
      }
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--procs") {
      opts.procs = parse_int_list(next(), "--procs");
      procs_given = true;
    } else if (arg == "--sizes") {
      opts.size_indices.clear();
      for (const int v : parse_int_list(next(), "--sizes", 0)) {
        if (v > 2) {
          std::cerr << "sva_bench: --sizes entries must be 0..2 (got " << v << ")\n";
          return 2;
        }
        opts.size_indices.push_back(v);
      }
      sizes_given = true;
    } else if (arg == "--s1-mb") {
      const std::vector<int> v = parse_int_list(next(), "--s1-mb");
      if (v.size() != 1) {
        std::cerr << "sva_bench: --s1-mb takes a single value\n";
        return 2;
      }
      opts.s1_bytes = static_cast<std::size_t>(v.front()) << 20;
      s1_given = true;
    } else if (arg == "--out-dir") {
      opts.out_dir = next();
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::cerr << "sva_bench: unknown argument " << arg << "\n";
      print_usage();
      return 2;
    }
  }

  auto& registry = Registry::instance();

  if (list || (names.empty() && !smoke)) {
    print_inventory(std::cout);
    if (!list && names.empty() && !smoke) {
      std::cout << "\nnothing selected; use --run NAME or --smoke\n";
      print_usage();
    }
    return 0;
  }

  // Validate every requested name up front: an unknown benchmark exits
  // nonzero with the full inventory instead of silently running nothing
  // (or only a prefix of the request).
  {
    bool unknown = false;
    for (const std::string& name : names) {
      if (registry.find(name) == nullptr) {
        std::cerr << "sva_bench: unknown benchmark '" << name << "'\n";
        unknown = true;
      }
    }
    if (unknown) {
      print_inventory(std::cerr);
      return 2;
    }
  }

  if (smoke) {
    opts.smoke = true;
    if (!procs_given) opts.procs = {1, 4};
    if (!sizes_given) opts.size_indices = {0};
    if (!s1_given) opts.s1_bytes = 256 << 10;  // tiny corpora: CI-sized sweep
    if (names.empty()) {
      for (const BenchInfo* info : registry.sorted()) names.push_back(info->name);
    }
  }

  int failures = 0;
  std::vector<std::string> violations;
  for (const std::string& name : names) {
    const BenchInfo* info = registry.find(name);
    try {
      report::Report report = info->fn(opts);
      report.meta["smoke"] = opts.smoke;
      {
        svabench::json::Value procs = svabench::json::Value::array();
        for (const int p : opts.procs) procs.push_back(p);
        report.meta["procs"] = std::move(procs);
      }
      report.meta["s1_bytes"] = opts.s1_bytes;
      const auto path = report::write_report(report, opts.out_dir);
      std::cout << "wrote " << path.string() << "\n";
      for (const auto& key : report.determinism_violations()) {
        violations.push_back(report.name + ": " + key);
      }
    } catch (const std::exception& e) {
      std::cerr << "sva_bench: " << name << " failed: " << e.what() << "\n";
      ++failures;
    }
  }

  if (!violations.empty()) {
    std::cerr << "\nDETERMINISM FAILURE: EngineResult checksums differ across P for:\n";
    for (const auto& v : violations) std::cerr << "  " << v << "\n";
  }
  if (failures > 0) std::cerr << failures << " benchmark(s) failed\n";
  return (failures > 0 || !violations.empty()) ? 1 : 0;
}
