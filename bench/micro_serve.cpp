// Microbenchmark for the serving daemon: one engine pass exports a model
// bundle; a serve::Server then answers the fixed mixed workload through
// three planes at each processor count —
//
//   per_query:  batch_max=1, so every query pays its own sweep (the
//               dispatch discipline a naive daemon would use);
//   coalesced:  batch_max=concurrency, so the admission scheduler folds
//               the concurrent in-flight queries into shared
//               Session::run_batch sweeps;
//   cached:     the coalesced plane answering a warmed workload straight
//               from the result cache (no sweeps at all).
//
// Load is driven two ways: a fixed-concurrency closed loop (8 clients,
// one query in flight each — the throughput comparison the coalescing
// claim is stated against), and an open loop that submits at scheduled
// arrival times (several rates, fractions of the measured coalesced
// saturation) and measures latency from the *planned* arrival, so
// dispatcher backlog is charged to the daemon, not hidden.  p50/p95/p99
// latency and queries/s land in the series; best_s/p50_s/p95_s ride the
// CI wall gate, p99_s is informational.
//
// The benchmark fails outright if any plane's answers are not
// bit-identical (FNV digest) to a one-shot Session::run_batch over the
// same bundle at the same P, or if the coalesced plane does not beat
// per-query dispatch by the expected margin; the determinism ledger
// additionally pins every plane's digest across P ∈ {1,2,4}.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "registry.hpp"
#include "sva/engine/bundle.hpp"
#include "sva/engine/digest.hpp"
#include "sva/query/session.hpp"
#include "sva/serve/server.hpp"
#include "sva/util/bytes.hpp"
#include "sva/util/error.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

using sva::query::Query;
using sva::query::QueryResult;
using sva::serve::ServeOptions;
using sva::serve::Server;

/// Canonical byte digest of a result set: doc ids and exact double bit
/// patterns, so two digests agree iff the answers are bit-identical.
std::uint64_t digest_results(const std::vector<QueryResult>& results) {
  sva::ByteWriter w;
  w.u64(results.size());
  for (const auto& r : results) {
    w.u64(static_cast<std::uint64_t>(r.kind));
    w.u64(r.hits.size());
    for (const auto& h : r.hits) {
      w.u64(h.doc_id);
      w.f64(h.similarity);
    }
    const auto& s = r.summary;
    w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(s.cluster)));
    w.u64(static_cast<std::uint64_t>(s.size));
    w.f64(s.cohesion);
    w.u64(s.representatives.size());
    for (const auto d : s.representatives) w.u64(d);
    for (const auto& t : s.top_terms) w.str(t);
  }
  return sva::engine::fnv1a64(w.bytes.data(), w.bytes.size());
}

/// The fixed mixed workload (micro_query's shape): 3/4 "more like this"
/// probes spread across the document range, 1/4 theme summaries.
std::vector<Query> make_workload(std::uint64_t num_docs, std::size_t num_clusters,
                                 std::size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 4 == 3) {
      queries.push_back(
          Query::cluster_summary(static_cast<int>(i % num_clusters), /*reps=*/5));
    } else {
      const std::uint64_t doc = (i * num_docs) / count;  // spread, deterministic
      queries.push_back(Query::similar_doc(doc, /*top_k=*/8));
    }
  }
  return queries;
}

/// What one driven load pass (or a best-of pool of passes) measured.
struct LoadStats {
  double best_s = 0.0;  ///< fastest whole-workload wall time across reps
  double queries_per_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t sweeps = 0;  ///< sweeps the measured passes cost the world
};

double percentile(std::vector<double> sorted, int pct) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx =
      std::min(sorted.size() - 1, (sorted.size() * static_cast<std::size_t>(pct)) / 100);
  return sorted[idx];
}

void finish_stats(LoadStats& out, std::vector<double>& latencies, std::size_t workload) {
  std::sort(latencies.begin(), latencies.end());
  out.queries_per_s =
      out.best_s > 0.0 ? static_cast<double>(workload) / out.best_s : 0.0;
  out.p50_s = percentile(latencies, 50);
  out.p95_s = percentile(latencies, 95);
  out.p99_s = percentile(latencies, 99);
}

/// Closed loop: `concurrency` clients, one query in flight each, striding
/// the workload.  Latency pool spans all reps; best_s is the fastest rep.
LoadStats drive_closed_loop(Server& server, const std::vector<Query>& queries,
                            int concurrency, int reps) {
  LoadStats out;
  std::vector<QueryResult> results(queries.size());
  std::vector<double> latencies;
  latencies.reserve(queries.size() * static_cast<std::size_t>(reps));
  const std::uint64_t sweeps_before = server.stats().sweeps;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> rep_lat(queries.size());
    sva::WallTimer total;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(concurrency));
    for (int c = 0; c < concurrency; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = static_cast<std::size_t>(c); i < queries.size();
             i += static_cast<std::size_t>(concurrency)) {
          sva::WallTimer t;
          results[i] = server.submit(queries[i]).get();
          rep_lat[i] = t.elapsed();
        }
      });
    }
    for (auto& t : clients) t.join();
    const double elapsed = total.elapsed();
    if (rep == 0 || elapsed < out.best_s) out.best_s = elapsed;
    latencies.insert(latencies.end(), rep_lat.begin(), rep_lat.end());
  }
  out.digest = digest_results(results);
  out.sweeps = server.stats().sweeps - sweeps_before;
  finish_stats(out, latencies, queries.size());
  return out;
}

/// Open loop: a dispatcher submits at planned arrival times (fixed
/// rate); the harvester collects in submission order — sweeps complete
/// FIFO, so ready times are monotone in submission order and an in-order
/// get() stamps each completion accurately.  Latency is measured from
/// the planned arrival, not the actual submit, so a backlogged
/// dispatcher shows up as served latency instead of vanishing
/// (coordinated omission).
LoadStats drive_open_loop(Server& server, const std::vector<Query>& queries,
                          double rate_qps, int reps) {
  LoadStats out;
  std::vector<QueryResult> results(queries.size());
  std::vector<double> latencies;
  latencies.reserve(queries.size() * static_cast<std::size_t>(reps));
  const std::uint64_t sweeps_before = server.stats().sweeps;
  for (int rep = 0; rep < reps; ++rep) {
    const std::size_t n = queries.size();
    std::vector<std::future<QueryResult>> futures(n);
    std::atomic<std::size_t> dispatched{0};
    const auto start = std::chrono::steady_clock::now();
    std::thread dispatcher([&] {
      for (std::size_t i = 0; i < n; ++i) {
        const auto planned =
            start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(static_cast<double>(i) / rate_qps));
        std::this_thread::sleep_until(planned);
        futures[i] = server.submit(queries[i]);
        dispatched.store(i + 1, std::memory_order_release);
      }
    });
    double last_completion = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      while (dispatched.load(std::memory_order_acquire) <= i) std::this_thread::yield();
      results[i] = futures[i].get();
      const double completion =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      last_completion = completion;
      latencies.push_back(
          std::max(0.0, completion - static_cast<double>(i) / rate_qps));
    }
    dispatcher.join();
    if (rep == 0 || last_completion < out.best_s) out.best_s = last_completion;
  }
  out.digest = digest_results(results);
  out.sweeps = server.stats().sweeps - sweeps_before;
  finish_stats(out, latencies, queries.size());
  return out;
}

/// The reference answers: a one-shot Session::run_batch at P ranks —
/// exactly what `sva_query --batch` pays per invocation.
std::uint64_t oneshot_digest(const std::filesystem::path& bundle, int nprocs,
                             const std::vector<Query>& queries) {
  std::uint64_t digest = 0;
  sva::ga::spmd_run(nprocs, [&](sva::ga::Context& ctx) {
    auto session = sva::query::Session::open(ctx, bundle);
    const auto results = session.run_batch(queries);
    if (ctx.rank() == 0) digest = digest_results(results);
  });
  return digest;
}

report::Report run_micro_serve(const BenchOptions& opts) {
  banner("Micro: serving daemon (coalesced sweeps, result cache, open-loop latency)");

  report::Report out;
  out.name = "micro_serve";
  out.kind = "micro";
  out.title =
      "Serving daemon: coalesced vs per-query dispatch, cache plane, open-loop latency";

  // One engine pass builds the served artifact.
  const auto& sources = corpus_for(sva::corpus::CorpusKind::kPubMedLike, 0, opts);
  const sva::engine::EngineConfig config = bench_engine_config();
  const std::filesystem::path bundle = opts.out_dir / "micro_serve.svab";
  std::filesystem::create_directories(opts.out_dir);
  sva::ga::spmd_run(1, [&](sva::ga::Context& ctx) {
    const auto result = sva::engine::run_text_engine(ctx, sources, config);
    sva::engine::export_bundle(ctx, result, config, bundle);
  });

  std::uint64_t num_docs = 0;
  std::size_t num_clusters = 0;
  sva::ga::spmd_run(1, [&](sva::ga::Context& ctx) {
    const auto session = sva::query::Session::open(ctx, bundle);
    num_docs = session.num_documents();
    num_clusters = session.num_clusters();
  });

  const int concurrency = 8;
  const std::size_t workload = opts.smoke ? 64 : 256;  // divisible by concurrency
  const int reps = opts.smoke ? 2 : 4;
  // Smoke runs on shared CI runners where the coalescing margin can
  // compress under noise; the full run enforces the real claim.
  const double min_coalesce_speedup = opts.smoke ? 1.2 : 2.0;
  const auto queries = make_workload(num_docs, num_clusters, workload);

  sva::Table table(
      {"plane", "config", "best_s", "queries_per_s", "p50_ms", "p95_ms", "p99_ms"});
  json::Value series = json::Value::array();

  auto add_series = [&](const std::string& plane, const std::string& config_key,
                        const LoadStats& m, bool gate_latency) {
    table.add_row({plane, config_key, sva::Table::num(m.best_s, 5),
                   sva::Table::num(m.queries_per_s, 1), sva::Table::num(m.p50_s * 1e3, 3),
                   sva::Table::num(m.p95_s * 1e3, 3), sva::Table::num(m.p99_s * 1e3, 3)});
    json::Value record = json::Value::object();
    record["primitive"] = plane;
    record["config"] = config_key;
    if (gate_latency) {
      // best_s / p50_s / p95_s ride the keyed wall gate; p99_s is
      // recorded but informational (too tail-noisy to gate).
      record["best_s"] = m.best_s;
      record["p50_s"] = m.p50_s;
      record["p95_s"] = m.p95_s;
    } else {
      // The cache plane's whole-workload time is a few map lookups —
      // scheduler jitter, not serving cost — so keep it out of the
      // gated field names.
      record["elapsed_s"] = m.best_s;
    }
    record["p99_s"] = m.p99_s;
    record["queries"] = workload;
    record["queries_per_s"] = m.queries_per_s;
    record["sweeps"] = m.sweeps;
    series.push_back(std::move(record));
  };

  double coalesced_sat_p2 = 0.0;  // saturation anchor for the open-loop rates

  for (const int nprocs : {1, 2, 4}) {
    const std::uint64_t oneshot = oneshot_digest(bundle, nprocs, queries);
    const std::string config_key = "P=" + std::to_string(nprocs) +
                                   " C=" + std::to_string(concurrency) +
                                   " Q=" + std::to_string(workload);

    ServeOptions per_query_opts;
    per_query_opts.procs = nprocs;
    per_query_opts.batch_max = 1;
    per_query_opts.cache_capacity = 0;
    LoadStats per_query;
    {
      Server server(bundle, per_query_opts);
      server.start();
      per_query = drive_closed_loop(server, queries, concurrency, reps);
      server.stop();
      server.join();
    }

    ServeOptions coalesced_opts;
    coalesced_opts.procs = nprocs;
    coalesced_opts.batch_max = static_cast<std::size_t>(concurrency);
    coalesced_opts.cache_capacity = 0;
    LoadStats coalesced;
    LoadStats cached;
    {
      Server server(bundle, coalesced_opts);
      server.start();
      coalesced = drive_closed_loop(server, queries, concurrency, reps);
      server.stop();
      server.join();
    }
    {
      // Cache plane: same coalescing, cache sized for the workload; the
      // first (untimed) pass warms it, the measured passes are all hits.
      ServeOptions cached_opts = coalesced_opts;
      cached_opts.cache_capacity = 2 * workload;
      Server server(bundle, cached_opts);
      server.start();
      const LoadStats warm = drive_closed_loop(server, queries, concurrency, 1);
      cached = drive_closed_loop(server, queries, concurrency, reps);
      sva::require(warm.digest == cached.digest,
                   "micro_serve: cache-hit answers diverged from the warming pass at P=" +
                       std::to_string(nprocs));
      server.stop();
      server.join();
    }

    // Every plane must reproduce the one-shot answers bit-identically.
    for (const auto& [plane, digest] :
         {std::pair<const char*, std::uint64_t>{"per_query", per_query.digest},
          {"coalesced", coalesced.digest},
          {"cached", cached.digest}}) {
      sva::require(digest == oneshot, "micro_serve: " + std::string(plane) +
                                          " plane diverged from one-shot answers at P=" +
                                          std::to_string(nprocs));
    }

    const double speedup = per_query.queries_per_s > 0.0
                               ? coalesced.queries_per_s / per_query.queries_per_s
                               : 0.0;
    sva::require(speedup >= min_coalesce_speedup,
                 "micro_serve: coalesced plane only " + sva::Table::num(speedup, 2) +
                     "x per-query dispatch at P=" + std::to_string(nprocs) +
                     " (expected >= " + sva::Table::num(min_coalesce_speedup, 1) + "x)");

    add_series("per_query", config_key, per_query, /*gate_latency=*/true);
    add_series("coalesced", config_key, coalesced, /*gate_latency=*/true);
    add_series("cached", config_key, cached, /*gate_latency=*/false);

    out.record_checksum("serve per_query Q=" + std::to_string(workload), nprocs,
                        per_query.digest);
    out.record_checksum("serve coalesced Q=" + std::to_string(workload), nprocs,
                        coalesced.digest);
    out.record_checksum("serve cached Q=" + std::to_string(workload), nprocs,
                        cached.digest);

    if (nprocs == 2) coalesced_sat_p2 = coalesced.queries_per_s;
  }

  // Open-loop latency at P=2: arrival rates anchored to the measured
  // coalesced saturation, so the relative operating points (and hence
  // the latency distributions the gate tracks) are machine-portable
  // even though the absolute rates are not.
  {
    ServeOptions open_opts;
    open_opts.procs = 2;
    open_opts.batch_max = static_cast<std::size_t>(concurrency);
    open_opts.cache_capacity = 0;
    Server server(bundle, open_opts);
    server.start();
    const std::uint64_t oneshot = oneshot_digest(bundle, 2, queries);
    for (const double fraction : {0.2, 0.5}) {
      const double rate = std::max(50.0, fraction * coalesced_sat_p2);
      const LoadStats m = drive_open_loop(server, queries, rate, opts.smoke ? 1 : 2);
      sva::require(m.digest == oneshot,
                   "micro_serve: open-loop answers diverged from one-shot at P=2");
      const std::string config_key = "P=2 rate=" + sva::Table::num(fraction, 1) +
                                     "sat Q=" + std::to_string(workload);
      add_series("open_loop", config_key, m, /*gate_latency=*/true);
    }
    server.stop();
    server.join();
  }

  emit_table(opts, "micro_serve", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  out.data["workload_queries"] = workload;
  out.data["concurrency"] = concurrency;
  return out;
}

const Registrar registrar{"micro_serve", "micro",
                          "Serving daemon: coalesced sweeps vs per-query dispatch, "
                          "result cache, open-loop latency",
                          &run_micro_serve};

}  // namespace
}  // namespace svabench
