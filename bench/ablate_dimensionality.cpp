// Ablation: adaptive dimensionality (§4.2's PubMed pathology and remedy).
//
// With a deliberately starved topic space, many records contain no major
// term and produce null signatures; clustering quality collapses and
// convergence slows.  The paper's remedy — growing the dimensionality
// until signatures are robust — recovers both.  We sweep the initial N
// with the adaptive loop off and on, reporting the null-signature
// fraction, the rounds used, k-means iterations and final inertia.
#include "registry.hpp"

namespace svabench {
namespace {

report::Report run_ablate_dimensionality(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Ablation: adaptive dimensionality (PubMed-like S1)");

  report::Report out;
  out.name = "ablate_dimensionality";
  out.kind = "ablation";
  out.title = "Adaptive dimensionality: null fraction vs initial N";

  const auto& sources = corpus_for(CorpusKind::kPubMedLike, 0, opts);
  const std::vector<std::size_t> initial_ns =
      opts.smoke ? std::vector<std::size_t>{40, 100}
                 : std::vector<std::size_t>{40, 100, 400, 800};
  const int nprocs = opts.smoke ? 4 : 8;

  sva::Table table({"initial_N", "adaptive", "final_N", "final_M", "rounds", "null_pct",
                    "kmeans_iters", "inertia"});
  json::Value series = json::Value::array();
  for (const std::size_t initial_n : initial_ns) {
    for (const bool adaptive : {false, true}) {
      sva::engine::EngineConfig config = bench_engine_config();
      config.topicality.num_major_terms = initial_n;
      config.signature.adaptive = adaptive;
      config.signature.max_null_fraction = 0.01;
      config.signature.max_rounds = 4;

      const auto run = sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(),
                                                 sources, config);
      const auto& r = run.result;
      table.add_row(
          {sva::Table::num(static_cast<long long>(initial_n)), adaptive ? "yes" : "no",
           sva::Table::num(r.selection.n()), sva::Table::num(r.dimension),
           sva::Table::num(static_cast<long long>(r.signature_rounds)),
           sva::Table::num(100.0 * r.null_fraction_per_round.back(), 2),
           sva::Table::num(static_cast<long long>(r.clustering.iterations)),
           sva::Table::num(r.clustering.inertia, 4)});

      json::Value record = json::Value::object();
      record["initial_N"] = initial_n;
      record["adaptive"] = adaptive;
      record["final_N"] = r.selection.n();
      record["final_M"] = r.dimension;
      record["rounds"] = static_cast<std::int64_t>(r.signature_rounds);
      record["null_pct"] = 100.0 * r.null_fraction_per_round.back();
      record["kmeans_iters"] = static_cast<std::int64_t>(r.clustering.iterations);
      record["inertia"] = r.clustering.inertia;
      series.push_back(std::move(record));
    }
  }
  emit_table(opts, "ablate_dimensionality", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"ablate_dimensionality", "ablation",
                          "adaptive dimensionality sweep (null fraction remedy)",
                          &run_ablate_dimensionality};

}  // namespace
}  // namespace svabench
