// Ablation: adaptive dimensionality (§4.2's PubMed pathology and remedy).
//
// With a deliberately starved topic space, many records contain no major
// term and produce null signatures; clustering quality collapses and
// convergence slows.  The paper's remedy — growing the dimensionality
// until signatures are robust — recovers both.  We sweep the initial N
// with the adaptive loop off and on, reporting the null-signature
// fraction, the rounds used, k-means iterations and final inertia.
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner("Ablation: adaptive dimensionality (PubMed-like S1, P=8)");

  const auto& sources = svabench::corpus_for(CorpusKind::kPubMedLike, 0);

  sva::Table table({"initial_N", "adaptive", "final_N", "final_M", "rounds", "null_pct",
                    "kmeans_iters", "inertia"});
  for (const std::size_t initial_n : {40u, 100u, 400u, 800u}) {
    for (const bool adaptive : {false, true}) {
      sva::engine::EngineConfig config = svabench::bench_engine_config();
      config.topicality.num_major_terms = initial_n;
      config.signature.adaptive = adaptive;
      config.signature.max_null_fraction = 0.01;
      config.signature.max_rounds = 4;

      const auto run = sva::engine::run_pipeline(8, sva::ga::itanium_cluster_model(),
                                                 sources, config);
      const auto& r = run.result;
      table.add_row(
          {sva::Table::num(static_cast<long long>(initial_n)), adaptive ? "yes" : "no",
           sva::Table::num(r.selection.n()), sva::Table::num(r.dimension),
           sva::Table::num(static_cast<long long>(r.signature_rounds)),
           sva::Table::num(100.0 * r.null_fraction_per_round.back(), 2),
           sva::Table::num(static_cast<long long>(r.clustering.iterations)),
           sva::Table::num(r.clustering.inertia, 4)});
    }
  }
  svabench::emit("ablate_dimensionality", table);
  return 0;
}
