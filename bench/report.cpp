#include "report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "sva/engine/digest.hpp"
#include "sva/util/error.hpp"

namespace svabench::json {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw sva::InvalidArgument(std::string("json::Value: not a ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; emit null so the document stays parseable.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
  // Ensure a double never reads back as an integer.
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) == std::string::npos) out += ".0";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw sva::FormatError("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value(nullptr);
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8
          // and leave surrogate pairs unsupported.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<std::int64_t>(v));
      }
      // Integer overflow: fall through to double.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_value(const Value& v, std::string& out, int indent, int depth);

void dump_container_sep(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    append_number(out, v.as_double());
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const auto& items = v.items();
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ',';
      dump_container_sep(out, indent, depth + 1);
      dump_value(items[i], out, indent, depth + 1);
    }
    dump_container_sep(out, indent, depth);
    out += ']';
  } else {
    const auto& members = v.members();
    if (members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      dump_container_sep(out, indent, depth + 1);
      append_escaped(out, members[i].first);
      out += indent > 0 ? ": " : ":";
      dump_value(members[i].second, out, indent, depth + 1);
    }
    dump_container_sep(out, indent, depth);
    out += '}';
  }
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  if (!is_int()) type_error("integer");
  return std::get<std::int64_t>(data_);
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  if (!is_double()) type_error("number");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(data_);
}

const Value::Array& Value::items() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(data_);
}

const Value::Object& Value::members() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(data_);
}

Value& Value::operator[](std::string_view key) {
  if (is_null()) data_ = Object{};
  if (!is_object()) type_error("object");
  auto& members = std::get<Object>(data_);
  for (auto& [k, v] : members) {
    if (k == key) return v;
  }
  members.emplace_back(std::string(key), Value());
  return members.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(data_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw sva::InvalidArgument("json::Value: missing key " + std::string(key));
  return *v;
}

void Value::push_back(Value v) {
  if (is_null()) data_ = Array{};
  if (!is_array()) type_error("array");
  std::get<Array>(data_).push_back(std::move(v));
}

std::size_t Value::size() const {
  if (is_array()) return std::get<Array>(data_).size();
  if (is_object()) return std::get<Object>(data_).size();
  type_error("container");
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace svabench::json

namespace svabench::report {

void Report::record_checksum(const std::string& key, int procs, std::uint64_t checksum) {
  for (auto& series : checksums) {
    if (series.key == key) {
      series.by_procs.emplace_back(procs, checksum);
      return;
    }
  }
  checksums.push_back({key, {{procs, checksum}}});
}

std::vector<std::string> Report::determinism_violations() const {
  std::vector<std::string> out;
  for (const auto& series : checksums) {
    for (const auto& [procs, checksum] : series.by_procs) {
      if (checksum != series.by_procs.front().second) {
        out.push_back(series.key);
        break;
      }
    }
  }
  return out;
}

json::Value Report::to_json() const {
  json::Value doc = json::Value::object();
  doc["schema_version"] = kSchemaVersion;
  doc["name"] = name;
  doc["kind"] = kind;
  doc["title"] = title;
  doc["meta"] = meta;
  doc["data"] = data;

  json::Value determinism = json::Value::object();
  determinism["consistent"] = determinism_violations().empty();
  json::Value series_json = json::Value::array();
  for (const auto& series : checksums) {
    json::Value entry = json::Value::object();
    entry["key"] = series.key;
    json::Value by_procs = json::Value::object();
    for (const auto& [procs, checksum] : series.by_procs) {
      by_procs[std::to_string(procs)] = sva::engine::checksum_hex(checksum);
    }
    entry["checksums"] = std::move(by_procs);
    series_json.push_back(std::move(entry));
  }
  determinism["series"] = std::move(series_json);
  doc["determinism"] = std::move(determinism);
  return doc;
}

json::Value run_record(Report& report, const std::string& key, int procs,
                       const sva::engine::PipelineRun& run, std::uint64_t corpus_bytes) {
  const auto& timings = run.result.timings;
  json::Value record = json::Value::object();
  record["procs"] = procs;
  record["modeled_s"] = run.modeled_seconds;
  record["wall_s"] = run.wall_seconds;
  json::Value stages = json::Value::object();
  for (const auto& label : sva::engine::ComponentTimings::labels()) {
    stages[label] = timings.by_label(label);
  }
  record["stages"] = std::move(stages);
  record["bytes"] = static_cast<std::int64_t>(corpus_bytes);
  record["throughput_mb_s"] =
      run.modeled_seconds > 0.0
          ? static_cast<double>(corpus_bytes) / 1.0e6 / run.modeled_seconds
          : 0.0;
  record["records"] = static_cast<std::int64_t>(run.result.num_records);
  record["terms"] = static_cast<std::int64_t>(run.result.num_terms);

  const std::uint64_t checksum = sva::engine::result_checksum(run.result);
  record["checksum"] = sva::engine::checksum_hex(checksum);
  report.record_checksum(key, procs, checksum);
  return record;
}

json::Value table_json(const sva::Table& table) {
  json::Value out = json::Value::object();
  json::Value columns = json::Value::array();
  for (const auto& h : table.header()) columns.push_back(h);
  out["columns"] = std::move(columns);
  json::Value rows = json::Value::array();
  for (const auto& row : table.body()) {
    json::Value cells = json::Value::array();
    for (const auto& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  out["rows"] = std::move(rows);
  return out;
}

std::filesystem::path write_report(const Report& report, const std::filesystem::path& out_dir) {
  std::filesystem::create_directories(out_dir);
  const std::filesystem::path path = out_dir / ("BENCH_" + report.name + ".json");
  std::ofstream stream(path);
  if (!stream) throw sva::Error("write_report: cannot open " + path.string());
  stream << report.to_json().dump() << '\n';
  if (!stream) throw sva::Error("write_report: short write to " + path.string());
  return path;
}

}  // namespace svabench::report
