// Microbenchmark for incremental delta ingestion: one engine pass over
// the first 90% of the corpus exports the base bundle; the remaining 10%
// then lands two ways at each processor count —
//
//   delta_ingest:    engine::ingest_delta scans only the new documents
//                    and folds them into the next bundle generation;
//   full_recompute:  recompute_generation re-scans the combined corpus
//                    under the same frozen model (what every ingest
//                    would cost without the delta path).
//
// best_s per (path, P) is the wall figure the CI gate tracks; the
// determinism ledger records the FNV-1a digest of the produced bundle
// per (path, P) — the two paths must produce byte-identical bundles
// (the PR's acceptance invariant), so a single shared digest per P is
// recorded for both and the benchmark fails on any divergence.  The
// benchmark also fails when a 10% delta stops beating the full
// recompute by at least 3x at P=1 (relaxed at smoke size, strict
// improvement at higher P): losing that margin means the delta path
// re-scans work it should inherit.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "registry.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/delta.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/util/error.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

std::uint64_t file_digest(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  sva::require(in.good(), "micro_delta: cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  return sva::engine::fnv1a64(bytes.data(), bytes.size());
}

struct DeltaMeasurement {
  double delta_s = 0.0;
  double recompute_s = 0.0;
  std::uint64_t delta_digest = 0;
  std::uint64_t recompute_digest = 0;
};

/// Times both ingestion paths at P ranks, best-of-reps, barrier-fenced.
/// Every rep rewrites its output bundle (temp-then-rename), so the
/// measured figure includes the full artifact cost each path pays.
DeltaMeasurement measure_paths(const std::filesystem::path& base,
                               const sva::corpus::CorpusReader& combined,
                               std::size_t n_base, const std::filesystem::path& out_dir,
                               int nprocs, int reps) {
  DeltaMeasurement out;
  const sva::corpus::SliceReader tail(combined, n_base, combined.size());
  const auto delta_out = out_dir / ("micro_delta_ingest_p" + std::to_string(nprocs) + ".svab");
  const auto recompute_out =
      out_dir / ("micro_delta_recompute_p" + std::to_string(nprocs) + ".svab");

  sva::ga::spmd_run(nprocs, [&](sva::ga::Context& ctx) {
    for (int rep = 0; rep < reps; ++rep) {
      ctx.barrier();
      sva::WallTimer timer;
      (void)sva::engine::ingest_delta(ctx, base, tail, delta_out);
      ctx.barrier();
      const double elapsed = timer.elapsed();
      if (ctx.rank() == 0 && (rep == 0 || elapsed < out.delta_s)) out.delta_s = elapsed;
    }
    for (int rep = 0; rep < reps; ++rep) {
      ctx.barrier();
      sva::WallTimer timer;
      (void)sva::engine::recompute_generation(ctx, base, combined, recompute_out);
      ctx.barrier();
      const double elapsed = timer.elapsed();
      if (ctx.rank() == 0 && (rep == 0 || elapsed < out.recompute_s)) {
        out.recompute_s = elapsed;
      }
    }
  });

  out.delta_digest = file_digest(delta_out);
  out.recompute_digest = file_digest(recompute_out);
  std::filesystem::remove(delta_out);
  std::filesystem::remove(recompute_out);
  return out;
}

report::Report run_micro_delta(const BenchOptions& opts) {
  banner("Micro: incremental delta ingestion vs full recompute");

  report::Report out;
  out.name = "micro_delta";
  out.kind = "micro";
  out.title = "Delta ingestion: 10% new documents vs frozen-model full recompute";

  const auto& sources = corpus_for(sva::corpus::CorpusKind::kPubMedLike, 0, opts);
  const sva::corpus::InMemoryReader combined(sources);
  const std::size_t n = combined.size();
  const std::size_t n_base = n * 9 / 10;
  sva::require(n_base > 0 && n_base < n, "micro_delta: corpus too small to split");

  // The served base: a real engine run over the 90% prefix (the bundle
  // must carry the frozen model for ingest_delta to extend it).
  std::filesystem::create_directories(opts.out_dir);
  const std::filesystem::path base = opts.out_dir / "micro_delta_base.svab";
  const sva::engine::EngineConfig config = bench_engine_config();
  {
    const sva::corpus::SliceReader head(combined, 0, n_base);
    sva::engine::Engine engine(config);
    sva::engine::PipelineOptions options;
    options.export_bundle = base;
    sva::ga::spmd_run(2, [&](sva::ga::Context& ctx) {
      (void)engine.run(ctx, head, options);
    });
  }

  const int reps = opts.smoke ? 3 : 5;
  sva::Table table({"path", "config", "best_s", "docs_per_s", "speedup"});
  json::Value series = json::Value::array();

  for (const int nprocs : {1, 2, 4}) {
    const DeltaMeasurement m =
        measure_paths(base, combined, n_base, opts.out_dir, nprocs, reps);
    sva::require(m.delta_digest == m.recompute_digest,
                 "micro_delta: delta bundle diverged from the frozen-model recompute at "
                 "P=" + std::to_string(nprocs));

    const std::size_t new_docs = n - n_base;
    const std::string config_key =
        "P=" + std::to_string(nprocs) + " new=" + std::to_string(new_docs) + "/" +
        std::to_string(n);
    const double speedup = m.delta_s > 0.0 ? m.recompute_s / m.delta_s : 0.0;
    // The >=3x economy claim is judged at P=1, where both paths are
    // serial and the ratio isolates the scanned work.  At higher P the
    // recompute's scan parallelizes while the costs BOTH paths pay
    // (full-point assignment eval, rank-0 artifact write) stay serial,
    // so only strict improvement is required there; at smoke size the
    // fixed costs dominate a 263-document corpus and the P=1 bar drops.
    const double min_speedup = nprocs == 1 ? (opts.smoke ? 2.0 : 3.0) : 1.5;
    sva::require(speedup >= min_speedup,
                 "micro_delta: a 10% delta must beat the full recompute >= " +
                     std::to_string(min_speedup) + "x, got " + std::to_string(speedup) +
                     "x at P=" + std::to_string(nprocs));

    auto add = [&](const std::string& path, double seconds, std::size_t docs,
                   double path_speedup) {
      table.add_row({path, config_key, sva::Table::num(seconds, 5),
                     sva::Table::num(seconds > 0.0 ? docs / seconds : 0.0, 1),
                     sva::Table::num(path_speedup, 2)});
      json::Value record = json::Value::object();
      record["primitive"] = path;
      record["config"] = config_key;
      record["best_s"] = seconds;
      record["docs_scanned"] = docs;
      if (path_speedup > 0.0) record["delta_speedup"] = path_speedup;
      series.push_back(std::move(record));
    };
    add("delta_ingest", m.delta_s, new_docs, speedup);
    add("full_recompute", m.recompute_s, n, 0.0);

    // The produced artifact is identical across paths AND across P —
    // one digest per P keys the cross-P determinism verdict.
    out.record_checksum("gen1 bundle", nprocs, m.delta_digest);
  }

  std::filesystem::remove(base);
  emit_table(opts, "micro_delta", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  out.data["base_docs"] = n_base;
  out.data["total_docs"] = n;
  return out;
}

const Registrar registrar{"micro_delta", "micro",
                          "Incremental delta ingestion vs frozen-model full recompute",
                          &run_micro_delta};

}  // namespace
}  // namespace svabench
