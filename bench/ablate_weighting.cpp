// Ablation: association-matrix weighting × clustering backend, scored
// against the synthetic corpus's ground-truth themes.
//
// The paper gives the association entry as "conditional probabilities of
// occupance, modified by the independent probability of occurrence" —
// a formula with several defensible readings.  This ablation quantifies
// the choice: each weighting (raw conditional / lift-subtract /
// lift-ratio) runs through the full engine with both clustering backends
// and is scored by purity and NMI against the generator's latent themes.
#include "registry.hpp"
#include "sva/cluster/quality.hpp"

namespace svabench {
namespace {

report::Report run_ablate_weighting(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Ablation: association weighting x clustering backend (PubMed-like S1)");

  report::Report out;
  out.name = "ablate_weighting";
  out.kind = "ablation";
  out.title = "Association weighting x clustering backend vs ground truth";

  const auto spec = spec_for(CorpusKind::kPubMedLike, 0, opts);
  const auto& sources = corpus_for(CorpusKind::kPubMedLike, 0, opts);
  const int nprocs = opts.smoke ? 4 : 8;

  sva::Table table({"weighting", "backend", "clusters", "purity", "nmi", "null_pct",
                    "modeled_s"});
  json::Value series = json::Value::array();
  for (const auto weighting :
       {sva::sig::AssociationWeighting::kConditional,
        sva::sig::AssociationWeighting::kLiftSubtract,
        sva::sig::AssociationWeighting::kLiftRatio}) {
    for (const auto backend : {sva::engine::ClusteringBackend::kKMeans,
                               sva::engine::ClusteringBackend::kHierarchical}) {
      sva::engine::EngineConfig config = bench_engine_config();
      config.association.weighting = weighting;
      config.clustering = backend;
      config.kmeans.k = spec.num_themes;
      config.hierarchical.k = spec.num_themes;

      const auto run = sva::engine::run_pipeline(nprocs, sva::ga::itanium_cluster_model(),
                                                 sources, config);
      const auto& r = run.result;

      // Ground-truth labels aligned with the gathered assignment.
      std::vector<std::int32_t> truth;
      truth.reserve(r.projection.all_doc_ids.size());
      for (const auto doc : r.projection.all_doc_ids) {
        truth.push_back(
            static_cast<std::int32_t>(sva::corpus::ground_truth_theme(spec, doc)));
      }

      const double purity = sva::cluster::purity(r.all_assignment, truth);
      const double nmi =
          sva::cluster::normalized_mutual_information(r.all_assignment, truth);
      const std::string backend_name =
          backend == sva::engine::ClusteringBackend::kKMeans ? "kmeans" : "hierarchical";

      table.add_row({sva::sig::weighting_name(weighting), backend_name,
                     sva::Table::num(r.clustering.centroids.rows()),
                     sva::Table::num(purity, 3), sva::Table::num(nmi, 3),
                     sva::Table::num(100.0 * r.null_fraction_per_round.back(), 2),
                     sva::Table::num(run.modeled_seconds, 2)});

      const std::string key =
          std::string(sva::sig::weighting_name(weighting)) + "/" + backend_name;
      json::Value record = report::run_record(out, key, nprocs, run, sources.total_bytes());
      record["weighting"] = sva::sig::weighting_name(weighting);
      record["backend"] = backend_name;
      record["clusters"] = r.clustering.centroids.rows();
      record["purity"] = purity;
      record["nmi"] = nmi;
      record["null_pct"] = 100.0 * r.null_fraction_per_round.back();
      series.push_back(std::move(record));
    }
  }
  emit_table(opts, "ablate_weighting", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"ablate_weighting", "ablation",
                          "association weighting x clustering backend quality",
                          &run_ablate_weighting};

}  // namespace
}  // namespace svabench
