// Ablation: association-matrix weighting × clustering backend, scored
// against the synthetic corpus's ground-truth themes.
//
// The paper gives the association entry as "conditional probabilities of
// occupance, modified by the independent probability of occurrence" —
// a formula with several defensible readings.  This ablation quantifies
// the choice: each weighting (raw conditional / lift-subtract /
// lift-ratio) runs through the full engine with both clustering backends
// and is scored by purity and NMI against the generator's latent themes.
#include "sva/cluster/quality.hpp"
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner("Ablation: association weighting x clustering backend (PubMed-like S1, P=8)");

  const auto spec = svabench::spec_for(CorpusKind::kPubMedLike, 0);
  const auto& sources = svabench::corpus_for(CorpusKind::kPubMedLike, 0);

  sva::Table table({"weighting", "backend", "clusters", "purity", "nmi", "null_pct",
                    "modeled_s"});
  for (const auto weighting :
       {sva::sig::AssociationWeighting::kConditional,
        sva::sig::AssociationWeighting::kLiftSubtract,
        sva::sig::AssociationWeighting::kLiftRatio}) {
    for (const auto backend : {sva::engine::ClusteringBackend::kKMeans,
                               sva::engine::ClusteringBackend::kHierarchical}) {
      sva::engine::EngineConfig config = svabench::bench_engine_config();
      config.association.weighting = weighting;
      config.clustering = backend;
      config.kmeans.k = spec.num_themes;
      config.hierarchical.k = spec.num_themes;

      const auto run = sva::engine::run_pipeline(8, sva::ga::itanium_cluster_model(),
                                                 sources, config);
      const auto& r = run.result;

      // Ground-truth labels aligned with the gathered assignment.
      std::vector<std::int32_t> truth;
      truth.reserve(r.projection.all_doc_ids.size());
      for (const auto doc : r.projection.all_doc_ids) {
        truth.push_back(
            static_cast<std::int32_t>(sva::corpus::ground_truth_theme(spec, doc)));
      }

      table.add_row(
          {sva::sig::weighting_name(weighting),
           backend == sva::engine::ClusteringBackend::kKMeans ? "kmeans" : "hierarchical",
           sva::Table::num(r.clustering.centroids.rows()),
           sva::Table::num(sva::cluster::purity(r.all_assignment, truth), 3),
           sva::Table::num(
               sva::cluster::normalized_mutual_information(r.all_assignment, truth), 3),
           sva::Table::num(100.0 * r.null_fraction_per_round.back(), 2),
           sva::Table::num(run.modeled_seconds, 2)});
    }
  }
  svabench::emit("ablate_weighting", table);
  return 0;
}
