// Figure 6a: PubMed speedup vs processor count for three problem sizes.
// Figure 6b: percentage of time in each component (scan, index, topic,
//            AM, DocVec, ClusProj) for the smallest size at P = 4..32.
//
// Paper's claims: near-linear speedup for every size; component shares
// stay roughly constant as P grows — except topicality, whose Allreduce
// makes its (small) share grow with P.
#include "fig_speedup_common.hpp"

namespace svabench {
namespace {

report::Report run_fig6(const BenchOptions& opts) {
  return run_speedup_figure(sva::corpus::CorpusKind::kPubMedLike, "fig6_pubmed",
                            "Figure 6: PubMed-like speedup (a) and component breakdown (b)",
                            opts);
}

const Registrar registrar{"fig6_pubmed", "figure",
                          "PubMed-like speedup + component breakdown", &run_fig6};

}  // namespace
}  // namespace svabench
