// Figure 6a: PubMed speedup vs processor count for three problem sizes.
// Figure 6b: percentage of time in each component (scan, index, topic,
//            AM, DocVec, ClusProj) for the smallest size at P = 4..32.
//
// Paper's claims: near-linear speedup for every size; component shares
// stay roughly constant as P grows — except topicality, whose Allreduce
// makes its (small) share grow with P.
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  using sva::engine::ComponentTimings;
  svabench::banner("Figure 6: PubMed-like speedup (a) and component breakdown (b)");

  sva::Table speedup({"size", "procs", "modeled_s", "speedup"});
  std::map<int, ComponentTimings> smallest_by_procs;

  for (int size = 0; size < 3; ++size) {
    double p1_time = 0.0;
    for (int nprocs : svabench::proc_counts()) {
      const auto run = svabench::run_engine(CorpusKind::kPubMedLike, size, nprocs);
      if (nprocs == 1) p1_time = run.modeled_seconds;
      speedup.add_row({svabench::size_label(CorpusKind::kPubMedLike, size),
                       sva::Table::num(static_cast<long long>(nprocs)),
                       sva::Table::num(run.modeled_seconds, 3),
                       sva::Table::num(p1_time / run.modeled_seconds, 2)});
      if (size == 0) smallest_by_procs[nprocs] = run.result.timings;
    }
  }
  svabench::emit("fig6a_pubmed_speedup", speedup);

  sva::Table pct({"component", "p4_pct", "p8_pct", "p16_pct", "p32_pct"});
  for (const auto& label : ComponentTimings::labels()) {
    std::vector<std::string> row = {label};
    for (int nprocs : {4, 8, 16, 32}) {
      const auto& t = smallest_by_procs.at(nprocs);
      row.push_back(sva::Table::num(100.0 * t.by_label(label) / t.total(), 1));
    }
    pct.add_row(std::move(row));
  }
  svabench::emit("fig6b_pubmed_components", pct);
  return 0;
}
