// CI perf-regression gate: compares the previous main-branch
// bench-smoke-json artifact against a fresh --smoke run.
//
//   compare_reports --baseline DIR --current DIR
//
// Exits 0 when the trajectory holds, 1 on any regression (see
// compare.hpp for the rules), 2 on usage errors.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "compare.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: compare_reports --baseline DIR --current DIR\n"
      "                       [--throughput-tolerance F] [--modeled-tolerance F]\n"
      "                       [--wall-tolerance F]\n"
      "                       [--allow-checksum-change] [--allow-modeled-change]\n"
      "\n"
      "  --baseline DIR            previous run's BENCH_*.json directory\n"
      "  --current DIR             fresh run's BENCH_*.json directory\n"
      "  --throughput-tolerance F  allowed fractional wall-throughput drop\n"
      "                            (micro_text *_mb_s; default 0.10)\n"
      "  --modeled-tolerance F     allowed fractional modeled_s rise (default 0)\n"
      "  --wall-tolerance F        allowed fractional rise of the host-time\n"
      "                            micros' best_s/p50_s/p95_s (matched by\n"
      "                            primitive+config; default 0.10)\n"
      "  --allow-checksum-change   checksum drift is informational, not fatal\n"
      "  --allow-modeled-change    modeled_s rises are informational, not fatal\n"
      "                            (for PRs that re-cost the comm model)\n";
}

double parse_fraction(const std::string& arg, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(arg.c_str(), &end);
  if (end != arg.c_str() + arg.size() || arg.empty() || v < 0.0 || v > 10.0) {
    std::cerr << "compare_reports: bad value '" << arg << "' for " << flag << "\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svabench::compare;

  std::string baseline_dir;
  std::string current_dir;
  CompareOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "compare_reports: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_dir = next();
    } else if (arg == "--current") {
      current_dir = next();
    } else if (arg == "--throughput-tolerance") {
      options.throughput_tolerance = parse_fraction(next(), "--throughput-tolerance");
    } else if (arg == "--modeled-tolerance") {
      options.modeled_tolerance = parse_fraction(next(), "--modeled-tolerance");
    } else if (arg == "--wall-tolerance") {
      options.wall_tolerance = parse_fraction(next(), "--wall-tolerance");
    } else if (arg == "--allow-checksum-change") {
      options.allow_checksum_change = true;
    } else if (arg == "--allow-modeled-change") {
      options.allow_modeled_change = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::cerr << "compare_reports: unknown argument " << arg << "\n";
      print_usage();
      return 2;
    }
  }
  if (baseline_dir.empty() || current_dir.empty()) {
    std::cerr << "compare_reports: --baseline and --current are required\n";
    print_usage();
    return 2;
  }

  try {
    const CompareResult result = compare_directories(baseline_dir, current_dir, options);
    for (const auto& finding : result.findings) {
      (finding.fail ? std::cerr : std::cout)
          << (finding.fail ? "FAIL: " : "note: ") << finding.message << "\n";
    }
    std::cout << result.benchmarks_compared << " benchmark(s) compared, "
              << result.findings.size() << " finding(s)\n";
    if (result.failed()) {
      std::cerr << "perf-regression gate: FAILED\n";
      return 1;
    }
    std::cout << "perf-regression gate: OK\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "compare_reports: " << e.what() << "\n";
    return 1;
  }
}
