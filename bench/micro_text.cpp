// Microbenchmarks for the text-processing kernels (host wall-clock, not
// modeled time): tokenizer/dedup throughput on the string path vs the
// token-arena fast path, plus end-to-end scan_sources throughput.
//
// The "baseline" reproduces the pre-arena scanner inner loop — per-token
// std::string materialization, a std::string-keyed dedup map, and a
// second per-token hash lookup for the canonical rewrite.  The "arena"
// path is what scan_sources ships: string_view streaming, interning of
// unique spellings only, and a dense local->canonical rewrite.  Both
// produce the same term-id stream; the report records the verified match
// and the speedup.
#include <cstdint>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "registry.hpp"
#include "sva/text/scanner.hpp"
#include "sva/text/token_arena.hpp"
#include "sva/text/tokenizer.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

sva::corpus::CorpusSpec micro_spec(sva::corpus::CorpusKind kind, std::size_t bytes) {
  sva::corpus::CorpusSpec spec;
  spec.kind = kind;
  spec.target_bytes = bytes;
  spec.core_vocabulary = 4000;
  spec.num_themes = 8;
  spec.theme_vocabulary = 150;
  return spec;
}

struct PathResult {
  double best_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::vector<std::int64_t> ids;  ///< term-id stream (equivalence check)
};

/// Pre-arena scanner inner loop: tokenize into std::strings, dedup via a
/// string-keyed map, then a second per-token hash lookup (the canonical
/// rewrite the old scanner performed).
PathResult run_string_path(const sva::corpus::SourceSet& sources,
                           const sva::text::Tokenizer& tokenizer, int reps) {
  PathResult out;
  for (int rep = 0; rep < reps; ++rep) {
    sva::WallTimer timer;
    std::unordered_map<std::string, std::int64_t> term_ids;
    std::vector<std::vector<std::string>> fields;
    std::uint64_t bytes = 0;
    for (const auto& doc : sources.docs()) {
      for (const auto& field : doc.fields) {
        std::vector<std::string> tokens;
        tokenizer.tokenize_into(field.text, tokens);
        for (const auto& tok : tokens) {
          term_ids.try_emplace(tok, static_cast<std::int64_t>(term_ids.size()));
        }
        bytes += field.text.size();
        fields.push_back(std::move(tokens));
      }
    }
    std::vector<std::int64_t> ids;
    for (const auto& tokens : fields) {
      for (const auto& tok : tokens) ids.push_back(term_ids.at(tok));
    }
    const double elapsed = timer.elapsed();
    if (rep == 0 || elapsed < out.best_seconds) out.best_seconds = elapsed;
    out.bytes = bytes;
    out.ids = std::move(ids);
  }
  return out;
}

/// The shipping fast path: string_view streaming into a TokenArena, one
/// dedup probe per occurrence, dense id rewrite.
PathResult run_arena_path(const sva::corpus::SourceSet& sources,
                          const sva::text::Tokenizer& tokenizer, int reps) {
  PathResult out;
  for (int rep = 0; rep < reps; ++rep) {
    sva::WallTimer timer;
    sva::text::TokenArena arena;
    std::unordered_map<std::string_view, std::int64_t> term_ids;
    std::vector<std::int64_t> ids;
    std::uint64_t bytes = 0;
    for (const auto& doc : sources.docs()) {
      for (const auto& field : doc.fields) {
        tokenizer.for_each_token(field.text, [&](std::string_view tok) {
          auto it = term_ids.find(tok);
          std::int64_t id;
          if (it == term_ids.end()) {
            const std::string_view stable = arena.intern(tok);
            id = static_cast<std::int64_t>(term_ids.size());
            term_ids.emplace(stable, id);
          } else {
            id = it->second;
          }
          ids.push_back(id);
        });
        bytes += field.text.size();
      }
    }
    // Dense identity rewrite stands in for the canonical-id remap (one
    // array load per token in the real scanner).
    std::vector<std::int64_t> remap(term_ids.size());
    for (std::size_t i = 0; i < remap.size(); ++i) remap[i] = static_cast<std::int64_t>(i);
    for (auto& id : ids) id = remap[static_cast<std::size_t>(id)];
    const double elapsed = timer.elapsed();
    if (rep == 0 || elapsed < out.best_seconds) out.best_seconds = elapsed;
    out.bytes = bytes;
    out.ids = std::move(ids);
  }
  return out;
}

report::Report run_micro_text(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Micro: text kernels — string path vs token-arena fast path");

  report::Report out;
  out.name = "micro_text";
  out.kind = "micro";
  out.title = "Text kernel throughput (host wall-clock)";

  const std::size_t corpus_bytes = opts.smoke ? (1u << 20) : (4u << 20);
  const int reps = opts.smoke ? 3 : 5;
  const auto sources =
      sva::corpus::generate_corpus(micro_spec(CorpusKind::kPubMedLike, corpus_bytes));
  const sva::text::Tokenizer tokenizer;

  const PathResult baseline = run_string_path(sources, tokenizer, reps);
  const PathResult arena = run_arena_path(sources, tokenizer, reps);
  const bool streams_match = baseline.ids == arena.ids;

  const double baseline_mb_s =
      static_cast<double>(baseline.bytes) / 1.0e6 / baseline.best_seconds;
  const double arena_mb_s = static_cast<double>(arena.bytes) / 1.0e6 / arena.best_seconds;
  const double speedup = baseline.best_seconds / arena.best_seconds;

  sva::Table table({"path", "bytes", "best_s", "mb_per_s", "speedup_vs_string"});
  table.add_row({"string", sva::Table::num(baseline.bytes),
                 sva::Table::num(baseline.best_seconds, 4), sva::Table::num(baseline_mb_s, 1),
                 sva::Table::num(1.0, 2)});
  table.add_row({"token-arena", sva::Table::num(arena.bytes),
                 sva::Table::num(arena.best_seconds, 4), sva::Table::num(arena_mb_s, 1),
                 sva::Table::num(speedup, 2)});
  emit_table(opts, "micro_text_tokenizer", table);
  std::cout << "  token-arena speedup over string path: " << sva::Table::num(speedup, 2)
            << "x (id streams " << (streams_match ? "match" : "MISMATCH") << ")\n\n";

  json::Value tok = json::Value::object();
  tok["bytes"] = static_cast<std::int64_t>(baseline.bytes);
  tok["string_path_mb_s"] = baseline_mb_s;
  tok["arena_path_mb_s"] = arena_mb_s;
  tok["arena_speedup"] = speedup;
  tok["streams_match"] = streams_match;
  out.data["tokenizer"] = std::move(tok);

  // End-to-end scan_sources wall throughput at a couple of rank counts.
  json::Value scans = json::Value::array();
  sva::Table scan_table({"procs", "wall_s", "mb_per_s"});
  for (const int nprocs : {1, 4}) {
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      sva::WallTimer timer;
      sva::ga::spmd_run(nprocs, [&](sva::ga::Context& ctx) {
        (void)sva::text::scan_sources(ctx, sources, tokenizer.config());
      });
      const double elapsed = timer.elapsed();
      if (rep == 0 || elapsed < best) best = elapsed;
    }
    const double mb_s = static_cast<double>(sources.total_bytes()) / 1.0e6 / best;
    scan_table.add_row({sva::Table::num(static_cast<long long>(nprocs)),
                        sva::Table::num(best, 4), sva::Table::num(mb_s, 1)});
    json::Value record = json::Value::object();
    record["procs"] = nprocs;
    record["wall_s"] = best;
    record["mb_s"] = mb_s;
    scans.push_back(std::move(record));
  }
  emit_table(opts, "micro_text_scan", scan_table);
  out.data["scan"] = std::move(scans);
  return out;
}

const Registrar registrar{"micro_text", "micro",
                          "tokenizer/dedup throughput: string path vs token arena",
                          &run_micro_text};

}  // namespace
}  // namespace svabench
