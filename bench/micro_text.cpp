// Microbenchmarks (google-benchmark) for the text-processing kernels:
// tokenizer throughput, corpus generation, scanning and inversion.
#include <benchmark/benchmark.h>

#include "sva/corpus/generator.hpp"
#include "sva/index/inverted_index.hpp"
#include "sva/text/scanner.hpp"

namespace {

using namespace sva;

corpus::CorpusSpec micro_spec(corpus::CorpusKind kind, std::size_t bytes) {
  corpus::CorpusSpec spec;
  spec.kind = kind;
  spec.target_bytes = bytes;
  spec.core_vocabulary = 4000;
  spec.num_themes = 8;
  spec.theme_vocabulary = 150;
  return spec;
}

void BM_TokenizerThroughput(benchmark::State& state) {
  const auto sources = corpus::generate_corpus(
      micro_spec(corpus::CorpusKind::kPubMedLike, 1 << 20));
  text::Tokenizer tokenizer;
  std::vector<std::string> out;
  std::size_t bytes = 0;
  for (auto _ : state) {
    for (const auto& doc : sources.docs()) {
      for (const auto& field : doc.fields) {
        out.clear();
        tokenizer.tokenize_into(field.text, out);
        benchmark::DoNotOptimize(out.data());
        bytes += field.text.size();
      }
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TokenizerThroughput);

void BM_CorpusGeneration(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? corpus::CorpusKind::kPubMedLike
                                        : corpus::CorpusKind::kTrecLike;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto sources = corpus::generate_corpus(micro_spec(kind, 1 << 20));
    benchmark::DoNotOptimize(sources.size());
    bytes += sources.total_bytes();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(corpus::corpus_kind_name(kind));
}
BENCHMARK(BM_CorpusGeneration)->Arg(0)->Arg(1);

void BM_ScanPipeline(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto sources = corpus::generate_corpus(
      micro_spec(corpus::CorpusKind::kPubMedLike, 2 << 20));
  std::size_t bytes = 0;
  for (auto _ : state) {
    ga::spmd_run(nprocs, [&](ga::Context& ctx) {
      benchmark::DoNotOptimize(text::scan_sources(ctx, sources, {}).forward.total_terms);
    });
    bytes += sources.total_bytes();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ScanPipeline)->Arg(1)->Arg(4);

void BM_InvertedIndexing(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto sources = corpus::generate_corpus(
      micro_spec(corpus::CorpusKind::kTrecLike, 2 << 20));
  std::size_t bytes = 0;
  for (auto _ : state) {
    ga::spmd_run(nprocs, [&](ga::Context& ctx) {
      const auto scan = text::scan_sources(ctx, sources, {});
      benchmark::DoNotOptimize(
          index::build_inverted_index(ctx, scan.forward, scan.vocabulary->size(), {})
              .index.total_record_postings);
    });
    bytes += sources.total_bytes();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_InvertedIndexing)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
