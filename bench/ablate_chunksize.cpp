// Ablation: fixed-size chunking granularity [19].
//
// The chunk ("load") size trades scheduling overhead (one GA atomic per
// claim) against balance (large trailing chunks straggle).  The paper
// fixes a chunk size; this ablation sweeps it at P = 8 and P = 32 so the
// sweet spot and both failure modes are visible.
#include <memory>

#include "registry.hpp"
#include "sva/index/inverted_index.hpp"

namespace svabench {
namespace {

report::Report run_ablate_chunksize(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Ablation: fixed-size chunking granularity (indexing, TREC-like S1)");

  report::Report out;
  out.name = "ablate_chunksize";
  out.kind = "ablation";
  out.title = "Fixed-size chunking granularity (indexing)";

  const auto& sources = corpus_for(CorpusKind::kTrecLike, 0, opts);
  const std::vector<std::size_t> chunks =
      opts.smoke ? std::vector<std::size_t>{1, 32, 512}
                 : std::vector<std::size_t>{1, 8, 32, 128, 512, 4096};
  const std::vector<int> procs = opts.smoke ? std::vector<int>{4} : std::vector<int>{8, 32};

  sva::Table table({"chunk_fields", "procs", "index_modeled_s", "imbalance", "loads_total"});
  json::Value series = json::Value::array();
  for (const std::size_t chunk : chunks) {
    for (int nprocs : procs) {
      auto index_time = std::make_shared<double>(0.0);
      auto rep = std::make_shared<sva::index::LoadBalanceReport>();
      sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
        const auto scan =
            sva::text::scan_sources(ctx, sources, bench_engine_config().tokenizer);
        ctx.barrier();
        const double t0 = ctx.vtime_raw();
        sva::index::IndexingConfig config;
        config.chunk_fields = chunk;
        const auto result = sva::index::build_inverted_index(
            ctx, scan.forward, scan.vocabulary->size(), config);
        ctx.barrier();
        if (ctx.rank() == 0) {
          *index_time = ctx.vtime_raw() - t0;
          *rep = result.load_balance;
        }
      });
      std::int64_t loads = 0;
      for (auto l : rep->loads_claimed) loads += l;
      table.add_row({sva::Table::num(static_cast<long long>(chunk)),
                     sva::Table::num(static_cast<long long>(nprocs)),
                     sva::Table::num(*index_time, 3), sva::Table::num(rep->imbalance(), 3),
                     sva::Table::num(static_cast<long long>(loads))});

      json::Value record = json::Value::object();
      record["chunk_fields"] = chunk;
      record["procs"] = nprocs;
      record["index_modeled_s"] = *index_time;
      record["imbalance"] = rep->imbalance();
      record["loads_total"] = static_cast<std::int64_t>(loads);
      series.push_back(std::move(record));
    }
  }
  emit_table(opts, "ablate_chunksize", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"ablate_chunksize", "ablation",
                          "indexing chunk-size sweep (overhead vs balance)",
                          &run_ablate_chunksize};

}  // namespace
}  // namespace svabench
