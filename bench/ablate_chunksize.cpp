// Ablation: fixed-size chunking granularity [19].
//
// The chunk ("load") size trades scheduling overhead (one GA atomic per
// claim) against balance (large trailing chunks straggle).  The paper
// fixes a chunk size; this ablation sweeps it at P = 8 and P = 32 so the
// sweet spot and both failure modes are visible.
#include "sva/index/inverted_index.hpp"
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner("Ablation: fixed-size chunking granularity (indexing, TREC-like S1)");

  const auto& sources = svabench::corpus_for(CorpusKind::kTrecLike, 0);

  sva::Table table({"chunk_fields", "procs", "index_modeled_s", "imbalance", "loads_total"});
  for (const std::size_t chunk : {1u, 8u, 32u, 128u, 512u, 4096u}) {
    for (int nprocs : {8, 32}) {
      auto index_time = std::make_shared<double>(0.0);
      auto report = std::make_shared<sva::index::LoadBalanceReport>();
      sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
        const auto scan =
            sva::text::scan_sources(ctx, sources, svabench::bench_engine_config().tokenizer);
        ctx.barrier();
        const double t0 = ctx.vtime_raw();
        sva::index::IndexingConfig config;
        config.chunk_fields = chunk;
        const auto result = sva::index::build_inverted_index(
            ctx, scan.forward, scan.vocabulary->size(), config);
        ctx.barrier();
        if (ctx.rank() == 0) {
          *index_time = ctx.vtime_raw() - t0;
          *report = result.load_balance;
        }
      });
      std::int64_t loads = 0;
      for (auto l : report->loads_claimed) loads += l;
      table.add_row({sva::Table::num(static_cast<long long>(chunk)),
                     sva::Table::num(static_cast<long long>(nprocs)),
                     sva::Table::num(*index_time, 3),
                     sva::Table::num(report->imbalance(), 3),
                     sva::Table::num(static_cast<long long>(loads))});
    }
  }
  svabench::emit("ablate_chunksize", table);
  return 0;
}
