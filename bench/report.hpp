// Schema-versioned JSON perf telemetry for the sva_bench subsystem.
//
// Every benchmark emits one BENCH_<name>.json per run: per-stage modeled
// timings (the paper's six ComponentTimings labels), throughput, the
// P-sweep series, and a determinism checksum of the EngineResult so a
// P-variance regression is visible from the artifact alone.  The format
// is deliberately append-friendly: later PRs (sharding, batching, async)
// add fields under "data" without breaking older readers, and bump
// kSchemaVersion only on incompatible changes.
//
// The json::Value type is a tiny ordered-object JSON document — emit and
// parse, no external dependency — sized for telemetry, not for arbitrary
// interchange (UTF-16 surrogate escapes are passed through verbatim).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "sva/engine/pipeline.hpp"
#include "sva/util/table.hpp"

namespace svabench::json {

/// JSON document node.  Objects preserve insertion order so emitted
/// reports are stable and diffable.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : data_(b) {}                // NOLINT(google-explicit-constructor)
  Value(double d) : data_(d) {}              // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) : data_(i) {}        // NOLINT(google-explicit-constructor)
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::size_t u) : data_(static_cast<std::int64_t>(u)) {}  // NOLINT
  Value(std::string s) : data_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Value(std::string_view s) : data_(std::string(s)) {}  // NOLINT
  Value(const char* s) : data_(std::string(s)) {}       // NOLINT

  static Value object() { return Value(Object{}); }
  static Value array() { return Value(Array{}); }

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(data_); }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Numeric accessor: returns ints widened to double too.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  /// Object access: find-or-append (non-const), lookup (const).
  Value& operator[](std::string_view key);
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Array append.
  void push_back(Value v);

  [[nodiscard]] std::size_t size() const;

  /// Serializes with 2-space indentation (indent <= 0 for compact).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a complete JSON document; throws sva::FormatError on
  /// malformed input or trailing garbage.
  static Value parse(std::string_view text);

  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

 private:
  explicit Value(Array a) : data_(std::move(a)) {}
  explicit Value(Object o) : data_(std::move(o)) {}

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

}  // namespace svabench::json

namespace svabench::report {

/// Bump on incompatible BENCH_*.json layout changes.
inline constexpr int kSchemaVersion = 1;

/// One benchmark's emitted document plus the determinism ledger the
/// driver verifies across processor counts.
struct Report {
  std::string name;   ///< file stem: BENCH_<name>.json
  std::string kind;   ///< "figure" | "ablation" | "micro"
  std::string title;  ///< human headline
  json::Value meta = json::Value::object();  ///< resolved knobs (procs, bytes, smoke, …)
  json::Value data = json::Value::object();  ///< benchmark-specific series

  /// Determinism ledger: checksum of the EngineResult per (configuration
  /// key, procs).  The driver fails CI when a key's checksums differ
  /// across P.
  struct ChecksumSeries {
    std::string key;
    std::vector<std::pair<int, std::uint64_t>> by_procs;
  };
  std::vector<ChecksumSeries> checksums;

  void record_checksum(const std::string& key, int procs, std::uint64_t checksum);

  /// Keys whose checksums differ across processor counts.
  [[nodiscard]] std::vector<std::string> determinism_violations() const;

  /// Assembles the full document (schema_version, identity, meta, data,
  /// determinism block).
  [[nodiscard]] json::Value to_json() const;
};

/// Distills one engine execution into a run record — per-stage modeled
/// seconds (paper labels), totals, throughput MB/s over `corpus_bytes`,
/// host wall seconds and the EngineResult checksum — and files the
/// checksum under (key, procs) in the report's determinism ledger.
json::Value run_record(Report& report, const std::string& key, int procs,
                       const sva::engine::PipelineRun& run, std::uint64_t corpus_bytes);

/// Embeds an ASCII/CSV table as {"columns": [...], "rows": [[...]]}.
json::Value table_json(const sva::Table& table);

/// Writes BENCH_<name>.json under out_dir (created if needed); returns
/// the path written.
std::filesystem::path write_report(const Report& report, const std::filesystem::path& out_dir);

}  // namespace svabench::report
