// Shared shape of Figures 6 and 7: per-size speedup sweep (a) plus the
// smallest size's per-component time percentages (b) for one dataset
// family.  The component table reports every swept P > 1 (the paper uses
// 4..32; smoke sweeps fewer).
#pragma once

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

#include "registry.hpp"

namespace svabench {

inline report::Report run_speedup_figure(sva::corpus::CorpusKind kind, const std::string& name,
                                         const std::string& title, const BenchOptions& opts) {
  using sva::engine::ComponentTimings;
  banner(title);

  report::Report out;
  out.name = name;
  out.kind = "figure";
  out.title = title;
  json::Value series = json::Value::array();

  sva::Table speedup({"size", "procs", "modeled_s", "speedup"});
  std::map<int, ComponentTimings> smallest_by_procs;
  const int smallest_size =
      *std::min_element(opts.size_indices.begin(), opts.size_indices.end());

  for (int size : opts.size_indices) {
    const auto& sources = corpus_for(kind, size, opts);
    const std::string key = sva::corpus::corpus_kind_name(kind) + "/" + size_label(kind, size);
    json::Value entry = json::Value::object();
    entry["dataset"] = sva::corpus::corpus_kind_name(kind);
    entry["size"] = size_label(kind, size);
    entry["bytes"] = sources.total_bytes();
    json::Value runs = json::Value::array();

    double p1_time = 0.0;
    for (int nprocs : opts.procs) {
      const auto run = run_engine(kind, size, nprocs, opts);
      if (nprocs == opts.procs.front()) p1_time = run.modeled_seconds;
      json::Value record = report::run_record(out, key, nprocs, run, sources.total_bytes());
      record["speedup_vs_p1"] = p1_time > 0 ? p1_time / run.modeled_seconds : 1.0;
      runs.push_back(std::move(record));
      speedup.add_row({size_label(kind, size), sva::Table::num(static_cast<long long>(nprocs)),
                       sva::Table::num(run.modeled_seconds, 3),
                       sva::Table::num(p1_time / run.modeled_seconds, 2)});
      if (size == smallest_size) smallest_by_procs[nprocs] = run.result.timings;
    }
    entry["runs"] = std::move(runs);
    series.push_back(std::move(entry));
  }
  emit_table(opts, name + "_speedup", speedup);

  // Component-share table over the swept P > 1 (all P when only one).
  std::vector<int> pct_procs;
  for (int nprocs : opts.procs) {
    if (nprocs > 1) pct_procs.push_back(nprocs);
  }
  if (pct_procs.empty()) pct_procs = opts.procs;

  std::vector<std::string> header = {"component"};
  for (int nprocs : pct_procs) header.push_back("p" + std::to_string(nprocs) + "_pct");
  sva::Table pct(header);
  json::Value pct_json = json::Value::object();
  for (const auto& label : ComponentTimings::labels()) {
    std::vector<std::string> row = {label};
    json::Value shares = json::Value::object();
    for (int nprocs : pct_procs) {
      const auto& t = smallest_by_procs.at(nprocs);
      const double share = 100.0 * t.by_label(label) / t.total();
      row.push_back(sva::Table::num(share, 1));
      shares["p" + std::to_string(nprocs)] = share;
    }
    pct.add_row(std::move(row));
    pct_json[label] = std::move(shares);
  }
  emit_table(opts, name + "_components", pct);

  out.data["series"] = std::move(series);
  out.data["component_pct_smallest_size"] = std::move(pct_json);
  out.data["speedup_table"] = report::table_json(speedup);
  out.data["component_table"] = report::table_json(pct);
  return out;
}

}  // namespace svabench
