// Perf-regression comparison of two BENCH_*.json trajectories (the CI
// gate ROADMAP tracked since PR 2).
//
// The baseline is the previous main-branch bench-smoke-json artifact;
// the current side is a fresh --smoke run.  Three rules, mirroring the
// trajectory's noise characteristics:
//
//   * determinism checksums are exact: any change for a (benchmark, key,
//     procs) present on both sides fails — a checksum drift means the
//     engine's products changed;
//   * modeled_s may not regress beyond --modeled-tolerance (default 0:
//     modeled time is the LogGP communication model plus measured
//     compute, and any regression is a real cost increase); a PR that
//     deliberately re-costs the model passes --allow-modeled-change to
//     downgrade these findings to informational for one baseline cycle;
//   * micro_text's wall-clock throughput fields (*_mb_s) may not regress
//     more than --throughput-tolerance (default 10%: host wall clock is
//     noisy on shared runners);
//   * the host-time micros' wall metrics (micro_ga primitives,
//     micro_query serving planes, micro_serve daemon planes: best_s and
//     the p50_s/p95_s latency quantiles per primitive/config) may not
//     rise more than --wall-tolerance (default 10%) — series entries are
//     matched by (primitive, config) key, so reordering or adding
//     configs never misattributes a regression; p99_s drift is reported
//     informationally only.
//
// Benchmarks present only in the current run are new and ignored; a
// benchmark that disappears from the current run fails.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "report.hpp"

namespace svabench::compare {

struct CompareOptions {
  /// Allowed fractional regression of wall-clock throughput (micro_text
  /// *_mb_s fields).
  double throughput_tolerance = 0.10;
  /// Allowed fractional regression of modeled_s fields.
  double modeled_tolerance = 0.0;
  /// Allowed fractional rise of the host-time micros' wall metrics
  /// (best_s, p50_s, p95_s).
  double wall_tolerance = 0.10;
  /// Downgrade checksum changes to informational (for runs that are
  /// expected to change the engine's products).
  bool allow_checksum_change = false;
  /// Downgrade modeled_s regressions to informational (for runs that
  /// deliberately change the communication cost model).
  bool allow_modeled_change = false;
};

struct Finding {
  bool fail = false;  ///< false = informational
  std::string message;
};

struct CompareResult {
  std::vector<Finding> findings;
  int benchmarks_compared = 0;

  [[nodiscard]] bool failed() const {
    for (const auto& f : findings) {
      if (f.fail) return true;
    }
    return false;
  }
};

/// Compares one baseline report document against its current
/// counterpart; appends findings.  `name` is the benchmark name used in
/// messages.
void compare_report_documents(const std::string& name, const json::Value& baseline,
                              const json::Value& current, const CompareOptions& options,
                              CompareResult& out);

/// Compares every BENCH_*.json in `baseline_dir` against `current_dir`.
/// An empty or missing baseline directory yields an informational
/// finding and no failures (first-run bootstrap).
CompareResult compare_directories(const std::filesystem::path& baseline_dir,
                                  const std::filesystem::path& current_dir,
                                  const CompareOptions& options = {});

}  // namespace svabench::compare
