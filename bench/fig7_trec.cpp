// Figure 7a: TREC speedup vs processor count for three problem sizes.
// Figure 7b: component time percentages for the 1 GB-analog size.
//
// Same claims as Figure 6, on the noisier heavy-tailed web corpus.
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  using sva::engine::ComponentTimings;
  svabench::banner("Figure 7: TREC-like speedup (a) and component breakdown (b)");

  sva::Table speedup({"size", "procs", "modeled_s", "speedup"});
  std::map<int, ComponentTimings> smallest_by_procs;

  for (int size = 0; size < 3; ++size) {
    double p1_time = 0.0;
    for (int nprocs : svabench::proc_counts()) {
      const auto run = svabench::run_engine(CorpusKind::kTrecLike, size, nprocs);
      if (nprocs == 1) p1_time = run.modeled_seconds;
      speedup.add_row({svabench::size_label(CorpusKind::kTrecLike, size),
                       sva::Table::num(static_cast<long long>(nprocs)),
                       sva::Table::num(run.modeled_seconds, 3),
                       sva::Table::num(p1_time / run.modeled_seconds, 2)});
      if (size == 0) smallest_by_procs[nprocs] = run.result.timings;
    }
  }
  svabench::emit("fig7a_trec_speedup", speedup);

  sva::Table pct({"component", "p4_pct", "p8_pct", "p16_pct", "p32_pct"});
  for (const auto& label : ComponentTimings::labels()) {
    std::vector<std::string> row = {label};
    for (int nprocs : {4, 8, 16, 32}) {
      const auto& t = smallest_by_procs.at(nprocs);
      row.push_back(sva::Table::num(100.0 * t.by_label(label) / t.total(), 1));
    }
    pct.add_row(std::move(row));
  }
  svabench::emit("fig7b_trec_components", pct);
  return 0;
}
