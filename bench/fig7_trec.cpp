// Figure 7a: TREC speedup vs processor count for three problem sizes.
// Figure 7b: component time percentages for the 1 GB-analog size.
//
// Same claims as Figure 6, on the noisier heavy-tailed web corpus.
#include "fig_speedup_common.hpp"

namespace svabench {
namespace {

report::Report run_fig7(const BenchOptions& opts) {
  return run_speedup_figure(sva::corpus::CorpusKind::kTrecLike, "fig7_trec",
                            "Figure 7: TREC-like speedup (a) and component breakdown (b)",
                            opts);
}

const Registrar registrar{"fig7_trec", "figure",
                          "TREC-like speedup + component breakdown", &run_fig7};

}  // namespace
}  // namespace svabench
