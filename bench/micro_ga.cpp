// Microbenchmarks for the GA substrate primitives that underpin the
// performance model: SPMD world launch, barrier, collectives, one-sided
// puts, atomic fetch-and-increment, the distributed hashmap and the task
// queue.  These measure *host* wall-clock performance (real seconds),
// complementing the modeled-time figure harnesses.
//
// Except for spmd_launch (whose subject *is* world startup), every
// measurement launches the SPMD world once and times repetitions inside
// it, barrier-fenced, keeping the best rep.  Thread spawn/join would
// otherwise dominate: spawning 8 threads costs ~200us, the same order as
// 64 barriers.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "registry.hpp"
#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/global_array.hpp"
#include "sva/ga/task_queue.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

using sva::ga::Context;
using sva::ga::spmd_run;

/// Best-of-reps wall seconds for `body` (includes spmd_run launch; only
/// the spmd_launch benchmark wants that).
template <typename Body>
double best_seconds(int reps, Body&& body) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    sva::WallTimer timer;
    body();
    const double elapsed = timer.elapsed();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Best-of-reps wall seconds measured *inside* one running world.
/// `make(ctx)` runs once per rank and returns the per-rep body — any
/// state it captures (scratch vectors etc.) is rank-private, exactly
/// like buffers in real SPMD code.  Each rep is barrier-fenced (the
/// closing barrier makes rank 0's stopwatch cover every rank's work);
/// the first rep additionally absorbs warmup, and only the minimum is
/// kept — thread spawn/join never pollutes the per-op figures.
///
/// Under Backend::kProcess the same trick holds: rank 0 runs on the
/// calling thread, so `best` (captured by reference) survives the forked
/// ranks' exits.
template <typename MakeBody>
double best_seconds_in_world(const sva::ga::SpmdOptions& world, int reps,
                             MakeBody&& make) {
  double best = 0.0;
  spmd_run(world, [&](Context& ctx) {
    auto body = make(ctx);
    for (int rep = 0; rep < reps; ++rep) {
      ctx.barrier();
      sva::WallTimer timer;
      body(ctx);
      ctx.barrier();
      const double elapsed = timer.elapsed();
      if (ctx.rank() == 0 && (rep == 0 || elapsed < best)) best = elapsed;
    }
  });
  return best;
}

template <typename MakeBody>
double best_seconds_in_world(int nprocs, int reps, MakeBody&& make) {
  sva::ga::SpmdOptions world;
  world.nprocs = nprocs;
  return best_seconds_in_world(world, reps, std::forward<MakeBody>(make));
}

/// Adapter for bodies without per-rank state.
template <typename Body>
auto stateless(Body body) {
  return [body](Context&) { return body; };
}

report::Report run_micro_ga(const BenchOptions& opts) {
  banner("Micro: GA substrate primitives (host wall-clock)");

  report::Report out;
  out.name = "micro_ga";
  out.kind = "micro";
  out.title = "GA substrate primitive costs (host wall-clock)";

  // In-world reps are cheap (no thread spawn), so run more of them than
  // the old launch-per-rep harness could afford.
  const int reps = opts.smoke ? 2 : 4;
  const int world_reps = opts.smoke ? 4 : 12;
  sva::Table table({"primitive", "config", "best_s", "per_op_us"});
  json::Value series = json::Value::array();

  auto add = [&](const std::string& primitive, const std::string& config, double seconds,
                 double ops, bool informational = false) {
    const double per_op_us = ops > 0 ? 1.0e6 * seconds / ops : 0.0;
    table.add_row({primitive, config, sva::Table::num(seconds, 5),
                   sva::Table::num(per_op_us, 3)});
    json::Value record = json::Value::object();
    record["primitive"] = primitive;
    record["config"] = config;
    record["best_s"] = seconds;
    record["ops"] = ops;
    record["per_op_us"] = per_op_us;
    // The compare gate reports but never fails on entries flagged
    // informational (the process-backend axis: fork + shm staging noise
    // is a trajectory to watch, not a regression signal yet).
    if (informational) record["informational"] = true;
    series.push_back(std::move(record));
  };

  for (const int nprocs : {1, 4, 8}) {
    const double t = best_seconds(reps, [&] { spmd_run(nprocs, [](Context&) {}); });
    add("spmd_launch", "P=" + std::to_string(nprocs), t, 1.0);
  }

  for (const int nprocs : {2, 4, 8}) {
    constexpr int kIters = 64;
    const double t = best_seconds_in_world(nprocs, world_reps, stateless([](Context& ctx) {
                                             for (int i = 0; i < kIters; ++i) ctx.barrier();
                                           }));
    add("barrier", "P=" + std::to_string(nprocs), t, kIters);
  }

  for (const int nprocs : {4, 8}) {
    for (const std::size_t count : {std::size_t{256}, std::size_t{65536}}) {
      constexpr int kIters = 4;
      // v is initialized once outside the timed window; re-summing the
      // running result across reps keeps it finite (grows as P^reps) and
      // leaves only the collective calls between the barrier fences.
      const double t = best_seconds_in_world(nprocs, world_reps, [count](Context&) {
        return [v = std::vector<double>(count, 1.0)](Context& ctx) mutable {
          for (int i = 0; i < kIters; ++i) ctx.allreduce_sum(v.data(), v.size());
        };
      });
      // kIters is part of the key: best_s covers kIters in-world calls,
      // and the CI wall gate matches by (primitive, config) — a protocol
      // change must never be compared against old-protocol baselines.
      add("allreduce_sum",
          "P=" + std::to_string(nprocs) + " n=" + std::to_string(count) + " x" +
              std::to_string(kIters),
          t, static_cast<double>(count) * kIters);
    }
  }

  for (const int nprocs : {4, 8}) {
    for (const std::size_t chunk : {std::size_t{128}, std::size_t{4096}}) {
      constexpr int kIters = 4;
      const double t = best_seconds_in_world(nprocs, world_reps, [chunk](Context& outer) {
        // Rank-varying lengths exercise the variable-size paths.
        const std::size_t n = chunk + static_cast<std::size_t>(outer.rank());
        return [v = std::vector<std::int64_t>(n, outer.rank())](Context& ctx) {
          for (int i = 0; i < kIters; ++i) {
            (void)ctx.allgatherv(std::span<const std::int64_t>(v));
          }
        };
      });
      add("allgatherv",
          "P=" + std::to_string(nprocs) + " chunk=" + std::to_string(chunk) + " x" +
              std::to_string(kIters),
          t, static_cast<double>(chunk) * nprocs * kIters);
    }
  }

  for (const std::size_t block : {std::size_t{1024}, std::size_t{262144}}) {
    const double t = best_seconds_in_world(2, world_reps, [block](Context&) {
      return [block, buf = std::vector<std::int64_t>(block, 7)](Context& ctx) {
        auto ga = sva::ga::GlobalArray<std::int64_t>::create(ctx, block * 2);
        const auto [b, e] = ga.local_row_range(ctx);
        if (e > b) {
          ga.put(ctx, b, std::span<const std::int64_t>(buf.data(), e - b));
        }
      };
    });
    add("global_array_put", "P=2 block=" + std::to_string(block), t,
        static_cast<double>(block));
  }

  for (const int nprocs : {1, 4}) {
    constexpr int kIncrements = 512;
    const double t = best_seconds_in_world(nprocs, world_reps, stateless([](Context& ctx) {
                                             auto ga =
                                                 sva::ga::GlobalArray<std::int64_t>::create(
                                                     ctx, 1);
                                             for (int i = 0; i < kIncrements; ++i) {
                                               (void)ga.fetch_add(ctx, 0, 1);
                                             }
                                           }));
    add("fetch_add", "P=" + std::to_string(nprocs), t,
        static_cast<double>(kIncrements) * nprocs);
  }

  // Backend axis: the same barrier and allreduce sweeps under the
  // multi-process shm transport, keyed by an explicit backend= token so
  // thread-vs-process costs sit side by side in BENCH_micro_ga.json.
  // Process entries are informational in the compare gate for now; the
  // classic thread entries above keep their historical (gated) keys.
#if defined(__linux__)
  for (const int nprocs : {2, 4}) {
    sva::ga::SpmdOptions world;
    world.nprocs = nprocs;
    world.backend = sva::ga::Backend::kProcess;

    const double launch = best_seconds(reps, [&] { spmd_run(world, [](Context&) {}); });
    add("spmd_launch", "P=" + std::to_string(nprocs) + " backend=process", launch, 1.0,
        /*informational=*/true);

    constexpr int kBarrierIters = 64;
    const double barrier_t =
        best_seconds_in_world(world, world_reps, stateless([](Context& ctx) {
                                for (int i = 0; i < kBarrierIters; ++i) ctx.barrier();
                              }));
    add("barrier", "P=" + std::to_string(nprocs) + " backend=process", barrier_t,
        kBarrierIters, /*informational=*/true);

    constexpr int kReduceIters = 4;
    constexpr std::size_t kReduceCount = 4096;
    const double reduce_t = best_seconds_in_world(world, world_reps, [](Context&) {
      return [v = std::vector<double>(kReduceCount, 1.0)](Context& ctx) mutable {
        for (int i = 0; i < kReduceIters; ++i) ctx.allreduce_sum(v.data(), v.size());
      };
    });
    add("allreduce_sum",
        "P=" + std::to_string(nprocs) + " n=" + std::to_string(kReduceCount) +
            " backend=process x" + std::to_string(kReduceIters),
        reduce_t, static_cast<double>(kReduceCount) * kReduceIters,
        /*informational=*/true);
  }

  // Socket axis: the same sweeps again over the loopback TCP transport,
  // keyed backend=socket — wire framing + reduce-scatter/allgather costs
  // next to the shm and thread numbers.  Informational like the process
  // axis.
  for (const int nprocs : {2, 4}) {
    sva::ga::SpmdOptions world;
    world.nprocs = nprocs;
    world.backend = sva::ga::Backend::kSocket;

    const double launch = best_seconds(reps, [&] { spmd_run(world, [](Context&) {}); });
    add("spmd_launch", "P=" + std::to_string(nprocs) + " backend=socket", launch, 1.0,
        /*informational=*/true);

    constexpr int kBarrierIters = 64;
    const double barrier_t =
        best_seconds_in_world(world, world_reps, stateless([](Context& ctx) {
                                for (int i = 0; i < kBarrierIters; ++i) ctx.barrier();
                              }));
    add("barrier", "P=" + std::to_string(nprocs) + " backend=socket", barrier_t,
        kBarrierIters, /*informational=*/true);

    constexpr int kReduceIters = 4;
    constexpr std::size_t kReduceCount = 4096;
    const double reduce_t = best_seconds_in_world(world, world_reps, [](Context&) {
      return [v = std::vector<double>(kReduceCount, 1.0)](Context& ctx) mutable {
        for (int i = 0; i < kReduceIters; ++i) ctx.allreduce_sum(v.data(), v.size());
      };
    });
    add("allreduce_sum",
        "P=" + std::to_string(nprocs) + " n=" + std::to_string(kReduceCount) +
            " backend=socket x" + std::to_string(kReduceIters),
        reduce_t, static_cast<double>(kReduceCount) * kReduceIters,
        /*informational=*/true);
  }
#endif

  {
    const std::size_t batch = opts.smoke ? 2048 : 8192;
    std::vector<std::string> terms;
    terms.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) terms.push_back("bench_term_" + std::to_string(i));
    const double t =
        best_seconds_in_world(4, world_reps, stateless([&terms](Context& ctx) {
                                auto map = sva::ga::DistHashmap::create(ctx);
                                (void)map.insert_batch(ctx, terms);
                              }));
    add("hashmap_insert_batch", "P=4 batch=" + std::to_string(batch), t,
        static_cast<double>(batch) * 4);
  }

  for (const int nprocs : {1, 4, 8}) {
    constexpr std::size_t kTasks = 4096;
    const double t = best_seconds_in_world(nprocs, world_reps, stateless([](Context& ctx) {
                                             auto queue = sva::ga::make_task_queue(
                                                 ctx, sva::ga::Scheduling::kOwnerFirst,
                                                 kTasks, 32);
                                             while (queue->next(ctx)) {
                                             }
                                           }));
    add("task_queue_drain", "P=" + std::to_string(nprocs), t, static_cast<double>(kTasks));
  }

  emit_table(opts, "micro_ga", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"micro_ga", "micro",
                          "GA substrate primitive costs (launch/barrier/collectives/atomics)",
                          &run_micro_ga};

}  // namespace
}  // namespace svabench
