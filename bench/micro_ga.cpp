// Microbenchmarks (google-benchmark) for the GA substrate primitives that
// underpin the performance model: one-sided put/get, atomic
// fetch-and-increment, collectives, and the distributed hashmap.
// These measure *host* performance (real nanoseconds), complementing the
// modeled-time figure harnesses.
#include <benchmark/benchmark.h>

#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/global_array.hpp"
#include "sva/ga/task_queue.hpp"

namespace {

using namespace sva::ga;

void BM_SpmdLaunch(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    spmd_run(nprocs, [](Context&) {});
  }
}
BENCHMARK(BM_SpmdLaunch)->Arg(1)->Arg(4)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const int iters = 64;
  for (auto _ : state) {
    spmd_run(nprocs, [&](Context& ctx) {
      for (int i = 0; i < iters; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_AllreduceVector(benchmark::State& state) {
  const int nprocs = 4;
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    spmd_run(nprocs, [&](Context& ctx) {
      std::vector<double> v(count, 1.0);
      ctx.allreduce_sum(v.data(), v.size());
      benchmark::DoNotOptimize(v.data());
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(count) * 8);
}
BENCHMARK(BM_AllreduceVector)->Arg(1024)->Arg(65536);

void BM_GlobalArrayLocalPut(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    spmd_run(2, [&](Context& ctx) {
      auto ga = GlobalArray<std::int64_t>::create(ctx, block * 2);
      std::vector<std::int64_t> buf(block, 7);
      const auto [b, e] = ga.local_row_range(ctx);
      if (e > b) ga.put(ctx, b, std::span<const std::int64_t>(buf.data(), e - b));
      ctx.barrier();
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(block) * 8);
}
BENCHMARK(BM_GlobalArrayLocalPut)->Arg(1024)->Arg(262144);

void BM_FetchAddThroughput(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const int increments = 512;
  for (auto _ : state) {
    spmd_run(nprocs, [&](Context& ctx) {
      auto ga = GlobalArray<std::int64_t>::create(ctx, 1);
      for (int i = 0; i < increments; ++i) benchmark::DoNotOptimize(ga.fetch_add(ctx, 0, 1));
      ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * increments * nprocs);
}
BENCHMARK(BM_FetchAddThroughput)->Arg(1)->Arg(4);

void BM_HashmapInsertBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> terms;
  terms.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) terms.push_back("bench_term_" + std::to_string(i));
  for (auto _ : state) {
    spmd_run(4, [&](Context& ctx) {
      auto map = DistHashmap::create(ctx);
      benchmark::DoNotOptimize(map.insert_batch(ctx, terms));
      ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch) * 4);
}
BENCHMARK(BM_HashmapInsertBatch)->Arg(256)->Arg(8192);

void BM_TaskQueueDrain(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  constexpr std::size_t kTasks = 4096;
  for (auto _ : state) {
    spmd_run(nprocs, [&](Context& ctx) {
      auto queue = make_task_queue(ctx, Scheduling::kOwnerFirst, kTasks, 32);
      while (queue->next(ctx)) {
      }
      ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_TaskQueueDrain)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
