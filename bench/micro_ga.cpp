// Microbenchmarks for the GA substrate primitives that underpin the
// performance model: SPMD world launch, barrier, collectives, one-sided
// puts, atomic fetch-and-increment, the distributed hashmap and the task
// queue.  These measure *host* wall-clock performance (real seconds),
// complementing the modeled-time figure harnesses.
#include <cstdint>
#include <string>
#include <vector>

#include "registry.hpp"
#include "sva/ga/dist_hashmap.hpp"
#include "sva/ga/global_array.hpp"
#include "sva/ga/task_queue.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

using sva::ga::Context;
using sva::ga::spmd_run;

/// Best-of-reps wall seconds for `body`.
template <typename Body>
double best_seconds(int reps, Body&& body) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    sva::WallTimer timer;
    body();
    const double elapsed = timer.elapsed();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

report::Report run_micro_ga(const BenchOptions& opts) {
  banner("Micro: GA substrate primitives (host wall-clock)");

  report::Report out;
  out.name = "micro_ga";
  out.kind = "micro";
  out.title = "GA substrate primitive costs (host wall-clock)";

  const int reps = opts.smoke ? 2 : 4;
  sva::Table table({"primitive", "config", "best_s", "per_op_us"});
  json::Value series = json::Value::array();

  auto add = [&](const std::string& primitive, const std::string& config, double seconds,
                 double ops) {
    const double per_op_us = ops > 0 ? 1.0e6 * seconds / ops : 0.0;
    table.add_row({primitive, config, sva::Table::num(seconds, 5),
                   sva::Table::num(per_op_us, 3)});
    json::Value record = json::Value::object();
    record["primitive"] = primitive;
    record["config"] = config;
    record["best_s"] = seconds;
    record["ops"] = ops;
    record["per_op_us"] = per_op_us;
    series.push_back(std::move(record));
  };

  for (const int nprocs : {1, 4, 8}) {
    const double t = best_seconds(reps, [&] { spmd_run(nprocs, [](Context&) {}); });
    add("spmd_launch", "P=" + std::to_string(nprocs), t, 1.0);
  }

  for (const int nprocs : {2, 4, 8}) {
    constexpr int kIters = 64;
    const double t = best_seconds(reps, [&] {
      spmd_run(nprocs, [&](Context& ctx) {
        for (int i = 0; i < kIters; ++i) ctx.barrier();
      });
    });
    add("barrier", "P=" + std::to_string(nprocs), t, kIters);
  }

  for (const std::size_t count : {std::size_t{1024}, std::size_t{65536}}) {
    const double t = best_seconds(reps, [&] {
      spmd_run(4, [&](Context& ctx) {
        std::vector<double> v(count, 1.0);
        ctx.allreduce_sum(v.data(), v.size());
      });
    });
    add("allreduce_sum", "P=4 n=" + std::to_string(count), t, static_cast<double>(count));
  }

  for (const std::size_t block : {std::size_t{1024}, std::size_t{262144}}) {
    const double t = best_seconds(reps, [&] {
      spmd_run(2, [&](Context& ctx) {
        auto ga = sva::ga::GlobalArray<std::int64_t>::create(ctx, block * 2);
        std::vector<std::int64_t> buf(block, 7);
        const auto [b, e] = ga.local_row_range(ctx);
        if (e > b) {
          ga.put(ctx, b, std::span<const std::int64_t>(buf.data(), e - b));
        }
        ctx.barrier();
      });
    });
    add("global_array_put", "P=2 block=" + std::to_string(block), t,
        static_cast<double>(block));
  }

  for (const int nprocs : {1, 4}) {
    constexpr int kIncrements = 512;
    const double t = best_seconds(reps, [&] {
      spmd_run(nprocs, [&](Context& ctx) {
        auto ga = sva::ga::GlobalArray<std::int64_t>::create(ctx, 1);
        for (int i = 0; i < kIncrements; ++i) (void)ga.fetch_add(ctx, 0, 1);
        ctx.barrier();
      });
    });
    add("fetch_add", "P=" + std::to_string(nprocs), t,
        static_cast<double>(kIncrements) * nprocs);
  }

  {
    const std::size_t batch = opts.smoke ? 2048 : 8192;
    std::vector<std::string> terms;
    terms.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) terms.push_back("bench_term_" + std::to_string(i));
    const double t = best_seconds(reps, [&] {
      spmd_run(4, [&](Context& ctx) {
        auto map = sva::ga::DistHashmap::create(ctx);
        (void)map.insert_batch(ctx, terms);
        ctx.barrier();
      });
    });
    add("hashmap_insert_batch", "P=4 batch=" + std::to_string(batch), t,
        static_cast<double>(batch) * 4);
  }

  for (const int nprocs : {1, 4, 8}) {
    constexpr std::size_t kTasks = 4096;
    const double t = best_seconds(reps, [&] {
      spmd_run(nprocs, [&](Context& ctx) {
        auto queue =
            sva::ga::make_task_queue(ctx, sva::ga::Scheduling::kOwnerFirst, kTasks, 32);
        while (queue->next(ctx)) {
        }
        ctx.barrier();
      });
    });
    add("task_queue_drain", "P=" + std::to_string(nprocs), t, static_cast<double>(kTasks));
  }

  emit_table(opts, "micro_ga", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"micro_ga", "micro",
                          "GA substrate primitive costs (launch/barrier/collectives/atomics)",
                          &run_micro_ga};

}  // namespace
}  // namespace svabench
