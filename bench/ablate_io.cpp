// Ablation: serial shared disk vs parallel filesystem (§4.2's closing
// remark: "the scanning component becomes I/O bound, which can be
// leveraged by using scalable parallel file systems (e.g., Lustre)").
//
// The sweep runs the scan stage alone across P under both I/O models.
// Expected shape: with a parallel FS the scan stage keeps scaling with P;
// with one serial device the I/O term is constant, so scan time flattens
// onto the disk-streaming floor and speedup saturates.
#include "sva/text/scanner.hpp"
#include "bench_common.hpp"

int main() {
  using sva::corpus::CorpusKind;
  svabench::banner("Ablation: scan-stage I/O — serial shared disk vs parallel FS");

  const auto& sources = svabench::corpus_for(CorpusKind::kPubMedLike, 0);

  sva::Table table({"procs", "parallel_fs_s", "speedup_pfs", "serial_disk_s", "speedup_serial"});
  double base_pfs = 0.0;
  double base_serial = 0.0;
  for (const int nprocs : svabench::proc_counts()) {
    double scan_time[2] = {0.0, 0.0};
    for (const bool parallel : {true, false}) {
      auto model = sva::ga::itanium_cluster_model();
      model.io_parallel = parallel;
      // The corpora are scaled down ~1000x from the paper's GBs; scaling
      // the modeled disk the same way keeps the compute:I/O ratio of a
      // multi-gigabyte scan, which is the regime the Lustre remark is
      // about.  (A 2007 shared SCSI array streamed ~100 MB/s.)
      model.io_bandwidth = 10.0e6;
      auto out = std::make_shared<double>(0.0);
      sva::ga::spmd_run(nprocs, model, [&](sva::ga::Context& ctx) {
        ctx.barrier();
        ctx.reset_vtime();
        const auto scan = sva::text::scan_sources(
            ctx, sources, svabench::bench_engine_config().tokenizer);
        ctx.barrier();
        if (ctx.rank() == 0) *out = ctx.vtime_raw();
      });
      scan_time[parallel ? 0 : 1] = *out;
    }
    if (nprocs == 1) {
      base_pfs = scan_time[0];
      base_serial = scan_time[1];
    }
    table.add_row({sva::Table::num(static_cast<long long>(nprocs)),
                   sva::Table::num(scan_time[0], 3),
                   sva::Table::num(base_pfs / scan_time[0], 2),
                   sva::Table::num(scan_time[1], 3),
                   sva::Table::num(base_serial / scan_time[1], 2)});
  }
  svabench::emit("ablate_io", table);
  return 0;
}
