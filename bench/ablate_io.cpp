// Ablation: serial shared disk vs parallel filesystem (§4.2's closing
// remark: "the scanning component becomes I/O bound, which can be
// leveraged by using scalable parallel file systems (e.g., Lustre)").
//
// The sweep runs the scan stage alone across P under both I/O models.
// Expected shape: with a parallel FS the scan stage keeps scaling with P;
// with one serial device the I/O term is constant, so scan time flattens
// onto the disk-streaming floor and speedup saturates.
#include <memory>

#include "registry.hpp"

namespace svabench {
namespace {

report::Report run_ablate_io(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Ablation: scan-stage I/O — serial shared disk vs parallel FS");

  report::Report out;
  out.name = "ablate_io";
  out.kind = "ablation";
  out.title = "Scan-stage I/O: serial shared disk vs parallel FS";

  const auto& sources = corpus_for(CorpusKind::kPubMedLike, 0, opts);

  sva::Table table(
      {"procs", "parallel_fs_s", "speedup_pfs", "serial_disk_s", "speedup_serial"});
  json::Value series = json::Value::array();
  double base_pfs = 0.0;
  double base_serial = 0.0;
  for (const int nprocs : opts.procs) {
    double scan_time[2] = {0.0, 0.0};
    for (const bool parallel : {true, false}) {
      auto model = sva::ga::itanium_cluster_model();
      model.io_parallel = parallel;
      // The corpora are scaled down ~1000x from the paper's GBs; scaling
      // the modeled disk the same way keeps the compute:I/O ratio of a
      // multi-gigabyte scan, which is the regime the Lustre remark is
      // about.  (A 2007 shared SCSI array streamed ~100 MB/s.)
      model.io_bandwidth = 10.0e6;
      auto scan_out = std::make_shared<double>(0.0);
      sva::ga::spmd_run(nprocs, model, [&](sva::ga::Context& ctx) {
        ctx.barrier();
        ctx.reset_vtime();
        const auto scan =
            sva::text::scan_sources(ctx, sources, bench_engine_config().tokenizer);
        ctx.barrier();
        if (ctx.rank() == 0) *scan_out = ctx.vtime_raw();
      });
      scan_time[parallel ? 0 : 1] = *scan_out;
    }
    if (nprocs == opts.procs.front()) {
      base_pfs = scan_time[0];
      base_serial = scan_time[1];
    }
    table.add_row({sva::Table::num(static_cast<long long>(nprocs)),
                   sva::Table::num(scan_time[0], 3),
                   sva::Table::num(base_pfs / scan_time[0], 2),
                   sva::Table::num(scan_time[1], 3),
                   sva::Table::num(base_serial / scan_time[1], 2)});

    json::Value record = json::Value::object();
    record["procs"] = nprocs;
    record["parallel_fs_s"] = scan_time[0];
    record["serial_disk_s"] = scan_time[1];
    record["speedup_pfs"] = base_pfs / scan_time[0];
    record["speedup_serial"] = base_serial / scan_time[1];
    series.push_back(std::move(record));
  }
  emit_table(opts, "ablate_io", table);
  out.data["series"] = std::move(series);
  out.data["table"] = report::table_json(table);
  return out;
}

const Registrar registrar{"ablate_io", "ablation",
                          "scan-stage I/O model sweep (serial disk vs parallel FS)",
                          &run_ablate_io};

}  // namespace
}  // namespace svabench
