// Sharded out-of-core ingestion benchmark: shard-count sweeps at fixed P
// plus a processor sweep at fixed shard count, with the invariant the
// pipeline guarantees wired into the determinism ledger — the
// EngineResult checksum must be byte-identical for every shard count
// (entry 0 of each sweep is the classic single-pass engine, so sharding
// is also checked against the unsharded baseline, and the driver exits
// nonzero on any divergence).
#include <cstdint>
#include <iostream>

#include "registry.hpp"
#include "sva/corpus/reader.hpp"
#include "sva/engine/digest.hpp"
#include "sva/engine/engine.hpp"
#include "sva/util/timer.hpp"

namespace svabench {
namespace {

struct ShardedRun {
  double wall_s = 0.0;
  double modeled_s = 0.0;
  std::uint64_t checksum = 0;
  std::size_t num_records = 0;
};

ShardedRun run_sharded(const sva::corpus::SourceSet& sources, int nprocs,
                       std::size_t shards) {
  const sva::corpus::InMemoryReader reader(sources);
  sva::engine::Engine engine(bench_engine_config());
  sva::engine::PipelineOptions options;
  options.sharding.num_shards = shards;

  ShardedRun out;
  sva::WallTimer timer;
  sva::ga::spmd_run(nprocs, sva::ga::itanium_cluster_model(), [&](sva::ga::Context& ctx) {
    auto result = engine.run(ctx, reader, options);
    if (ctx.rank() == 0) {
      out.checksum = sva::engine::result_checksum(*result);
      out.modeled_s = result->timings.total();
      out.num_records = result->num_records;
    }
  });
  out.wall_s = timer.elapsed();
  return out;
}

report::Report run_ingest_sharded(const BenchOptions& opts) {
  using sva::corpus::CorpusKind;
  banner("Sharded out-of-core ingestion: shard-count and processor sweeps");

  report::Report out;
  out.name = "ingest_sharded";
  out.kind = "ablation";
  out.title = "Sharded ingestion vs single pass (checksum-verified)";

  const std::vector<std::size_t> shard_counts =
      opts.smoke ? std::vector<std::size_t>{1, 2, 5} : std::vector<std::size_t>{1, 2, 4, 8};
  const int fixed_procs = 2;
  const std::size_t fixed_shards = 3;

  for (const CorpusKind kind : {CorpusKind::kPubMedLike, CorpusKind::kTrecLike}) {
    const std::string kind_name = sva::corpus::corpus_kind_name(kind);
    const auto& sources = corpus_for(kind, 0, opts);

    // Baseline: the unsharded engine.  Filed as sweep entry 0 so any
    // sharded divergence from it is a determinism violation.
    const auto baseline =
        sva::engine::run_pipeline(fixed_procs, sva::ga::itanium_cluster_model(), sources,
                                  bench_engine_config());
    const std::uint64_t baseline_checksum = sva::engine::result_checksum(baseline.result);
    const std::string shard_key = kind_name + "/S1/shard-sweep";
    out.record_checksum(shard_key, 0, baseline_checksum);

    sva::Table table({"shards", "wall_s", "modeled_s", "checksum", "matches_single_pass"});
    json::Value sweep = json::Value::array();
    for (const std::size_t shards : shard_counts) {
      const ShardedRun run = run_sharded(sources, fixed_procs, shards);
      out.record_checksum(shard_key, static_cast<int>(shards), run.checksum);
      table.add_row({sva::Table::num(static_cast<long long>(shards)),
                     sva::Table::num(run.wall_s, 4), sva::Table::num(run.modeled_s, 4),
                     sva::engine::checksum_hex(run.checksum),
                     run.checksum == baseline_checksum ? "yes" : "NO"});
      json::Value record = json::Value::object();
      record["shards"] = shards;
      record["wall_s"] = run.wall_s;
      record["modeled_s"] = run.modeled_s;
      record["checksum"] = sva::engine::checksum_hex(run.checksum);
      record["matches_single_pass"] = run.checksum == baseline_checksum;
      sweep.push_back(std::move(record));
    }
    emit_table(opts, "ingest_sharded_" + kind_name, table);
    out.data[kind_name + "_shard_sweep"] = std::move(sweep);

    // Processor sweep at a fixed shard count: the same checksum must
    // appear at every P.
    const std::string proc_key = kind_name + "/S1/procs-sweep";
    json::Value procs_sweep = json::Value::array();
    for (const int nprocs : opts.procs) {
      const ShardedRun run = run_sharded(sources, nprocs, fixed_shards);
      out.record_checksum(proc_key, nprocs, run.checksum);
      json::Value record = json::Value::object();
      record["procs"] = nprocs;
      record["shards"] = fixed_shards;
      record["wall_s"] = run.wall_s;
      record["modeled_s"] = run.modeled_s;
      record["checksum"] = sva::engine::checksum_hex(run.checksum);
      procs_sweep.push_back(std::move(record));
    }
    out.data[kind_name + "_procs_sweep"] = std::move(procs_sweep);
  }
  return out;
}

const Registrar registrar{"ingest_sharded", "ablation",
                          "sharded out-of-core ingestion vs single pass (checksums)",
                          &run_ingest_sharded};

}  // namespace
}  // namespace svabench
